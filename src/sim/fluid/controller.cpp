#include "sim/fluid/controller.h"

#include <algorithm>
#include <cmath>

namespace corelite::sim::fluid {

FluidController::FluidController(Simulator& sim, TimeWarp& warp, stats::FlowTracker& tracker,
                                 FluidConfig cfg, SimTime experiment_end)
    : sim_{sim}, warp_{warp}, tracker_{tracker}, cfg_{cfg}, end_{experiment_end} {
  stats_.enabled = cfg_.enabled;
}

void FluidController::add_flow(net::FlowId id, double weight, std::vector<std::uint32_t> links) {
  Tracked t;
  t.id = id;
  t.weight = weight;
  flows_.push_back(t);
  AllocFlow a;
  a.weight = weight;
  a.links = std::move(links);
  alloc_flows_.push_back(std::move(a));
}

void FluidController::start() {
  last_tick_ = sim_.exp_now();
  last_events_ = sim_.events_processed();
  for (Tracked& f : flows_) {
    if (!tracker_.has(f.id)) continue;
    const auto& fs = tracker_.series(f.id);
    f.last_delivered = fs.delivered;
    f.last_sent = fs.sent;
    f.last_dropped = fs.dropped;
  }
  reset_window(last_tick_);
  tick_handle_ = sim_.every(cfg_.check_period, [this] { tick(); });
}

void FluidController::reset_window(SimTime t) {
  win_start_ = t;
  mid_set_ = false;
  for (Tracked& f : flows_) {
    f.win_delivered = f.last_delivered;
    f.win_sent = f.last_sent;
    f.win_dropped = f.last_dropped;
    f.drift_sign = 0;
    f.oscillatory = false;
  }
}

void FluidController::slide_window() {
  // The old second half becomes the new first half; drift signs are
  // kept — sign persistence across slid windows is what separates a
  // ramp from an oscillation.
  win_start_ = win_mid_;
  mid_set_ = false;
  for (Tracked& f : flows_) {
    f.win_delivered = f.mid_delivered;
    f.win_sent = f.mid_sent;
    f.win_dropped = f.mid_dropped;
  }
}

bool FluidController::halves_agree(SimTime t) {
  if (!mid_set_) return false;
  const double s1 = (win_mid_ - win_start_).sec();
  const double s2 = (t - win_mid_).sec();
  if (s1 <= 0.0 || s2 <= 0.0) return false;
  const double z =
      std::sqrt(2.0 * std::log(std::max<double>(static_cast<double>(flows_.size()), 2.0)));
  bool ok = true;
  double agg_r1 = 0.0;
  double agg_r2 = 0.0;
  for (Tracked& f : flows_) {
    const double r1 = static_cast<double>(f.mid_delivered - f.win_delivered) / s1;
    const double r2 = static_cast<double>(f.last_delivered - f.mid_delivered) / s2;
    agg_r1 += r1;
    agg_r2 += r2;
    const double mean = (r1 * s1 + r2 * s2) / (s1 + s2);
    // Below the per-flow measurement floor the halves are a handful of
    // packets each; intermittent delivery there is quantization, not
    // drift.  The aggregate half-window check below still catches many
    // sub-floor flows drifting the same way at once.
    if (mean < cfg_.rate_floor_pps) continue;
    // A half-window mean averages s/dt tick samples, so its noise std
    // is sqrt(var * dt / s) with var the flow's own measured tick
    // variance; the difference of the two halves adds in quadrature.
    // Max-of-N scaled like the tick test, plus a counter-grid quantum.
    // Using measured variance — not an assumed noise model — keeps the
    // gate tight for near-deterministic flows (it must catch their slow
    // convergence ramps) and loose for probabilistic-drop noise.
    const double dt = cfg_.check_period.sec();
    const double sigma = std::sqrt(std::max(f.var_delivered, 0.0) * dt * (1.0 / s1 + 1.0 / s2));
    double tol = z * sigma + cfg_.quant_slack_pkts * (1.0 / s1 + 1.0 / s2);
    // Minor flows — below the fidelity cross-check's absolute
    // resolution scale — additionally tolerate their own control-loop
    // oscillation amplitude (see FluidConfig::drift_major_pps).
    if (mean < cfg_.drift_major_pps) {
      tol += cfg_.drift_minor_frac * std::max(mean, cfg_.rate_floor_pps);
    }
    if (std::abs(r2 - r1) <= tol) continue;
    // Halves disagree: ramp or slow oscillation?  A ramp repeats the
    // same drift sign across slid windows — hold off, the window mean
    // lags the trend.  An oscillation flips sign — its full-window mean
    // averages out correctly, so a flipped flow is tolerated.
    const int sign = r2 > r1 ? 1 : -1;
    const int prev = f.drift_sign;
    f.drift_sign = sign;
    if (prev == -sign) f.oscillatory = true;
    if (f.oscillatory) continue;
    ok = false;
  }
  // Aggregate half-window drift: the tick-scale aggregate band test
  // compares against a fast EWMA, which tracks a slow monotone ramp
  // instead of flagging it.  Comparing the window halves directly has
  // no such lag, and covers the sub-floor flows the per-flow test
  // skips.  Quantization noise across N independent counters adds in
  // quadrature — sqrt(N) — not linearly.
  const double agg_tol =
      cfg_.band * std::max(0.5 * (agg_r1 + agg_r2), cfg_.rate_floor_pps) +
      cfg_.quant_slack_pkts * std::sqrt(static_cast<double>(std::max<std::size_t>(flows_.size(), 1))) *
          (1.0 / s1 + 1.0 / s2);
  if (std::abs(agg_r2 - agg_r1) > agg_tol) ok = false;
  return ok;
}

void FluidController::tick() {
  const SimTime t = sim_.exp_now();
  const double dt = (t - last_tick_).sec();
  last_tick_ = t;
  if (dt <= 0.0) return;
  const double a = cfg_.ewma_alpha;

  // A workload boundary fired since the last check: the measurement in
  // progress straddles a workload change and is void.  The band test
  // alone cannot be trusted to catch this — a freshly started flow
  // still ramping below the quantization slack looks "in band" at
  // near-zero rate and would be extrapolated as silent.
  if (warp_.fired_count() != warp_fired_seen_) {
    warp_fired_seen_ = warp_.fired_count();
    emit_cert(FluidCertEvent::Kind::kBoundaryReset, t, (t - win_start_).sec());
    dwell_ = 0;
    out_band_ = 0;
    reanchor_ = false;
    reset_window(t);
  }

  const std::uint64_t ev = sim_.events_processed();
  const double ev_rate = static_cast<double>(ev - last_events_) / dt;
  last_events_ = ev;
  event_rate_ = event_rate_ < 0.0 ? ev_rate : a * ev_rate + (1.0 - a) * event_rate_;

  // Per-flow band test on the flows dense enough to measure, aggregate
  // band test over everything (sparse flows' quantization noise cancels
  // in the sum).  Band checks compare against the EWMA *before* this
  // tick's sample is folded in, so one outlier cannot drag the
  // reference toward itself.
  bool in_band = true;
  double total_inst = 0.0;
  double total_prev = 0.0;
  // Quantization slack: counter deltas measure rates on a 1/dt grid.
  // The per-flow test is an AND over every flow, so its slack must
  // absorb the expected *maximum* of N independent noise draws —
  // extreme-value scaling, sqrt(2 ln N) — or one unlucky flow per tick
  // keeps a large population permanently "unconverged".
  const double quant = cfg_.quant_slack_pkts / dt;
  const double zq =
      quant * std::sqrt(2.0 * std::log(std::max<double>(static_cast<double>(flows_.size()), 2.0)));
  for (Tracked& f : flows_) {
    const auto& fs = tracker_.series(f.id);
    const double rd = static_cast<double>(fs.delivered - f.last_delivered) / dt;
    const double rs = static_cast<double>(fs.sent - f.last_sent) / dt;
    const double rr = static_cast<double>(fs.dropped - f.last_dropped) / dt;
    f.last_delivered = fs.delivered;
    f.last_sent = fs.sent;
    f.last_dropped = fs.dropped;
    total_inst += rd;
    if (f.ewma_delivered < 0.0) {
      f.ewma_delivered = rd;
      f.ewma_sent = rs;
      f.ewma_dropped = rr;
      in_band = false;
      continue;
    }
    total_prev += f.ewma_delivered;
    const double dev = rd - f.ewma_delivered;  // vs the pre-fold EWMA
    f.var_delivered =
        f.var_delivered < 0.0 ? dev * dev : a * dev * dev + (1.0 - a) * f.var_delivered;
    if ((f.ewma_delivered >= cfg_.rate_floor_pps || rd >= cfg_.rate_floor_pps) &&
        std::abs(rd - f.ewma_delivered) >
            cfg_.band * std::max(f.ewma_delivered, cfg_.rate_floor_pps) + zq) {
      in_band = false;
    }
    f.ewma_delivered = a * rd + (1.0 - a) * f.ewma_delivered;
    f.ewma_sent = a * rs + (1.0 - a) * f.ewma_sent;
    f.ewma_dropped = a * rr + (1.0 - a) * f.ewma_dropped;
  }
  if (std::abs(total_inst - total_prev) >
      cfg_.band * std::max(total_prev, cfg_.rate_floor_pps) +
          quant * std::sqrt(static_cast<double>(flows_.size()))) {
    in_band = false;
  }

  // An isolated out-of-band tick is part of the steady oscillation the
  // window mean is supposed to integrate; only a sustained excursion (a
  // real phase change) invalidates the window.  The dwell counter is
  // still strict — a jump needs consecutive in-band ticks.
  out_band_ = in_band ? 0 : out_band_ + 1;
  if (out_band_ >= 2) {
    emit_cert(FluidCertEvent::Kind::kWindowReset, t, (t - win_start_).sec());
    reanchor_ = false;
    reset_window(t);
  }
  // A capped jump re-materialized inside the same certified phase, so
  // the controller only needs to re-anchor its rates — half a window —
  // before extrapolating again; a fresh phase needs the full window.
  const double need_window =
      cfg_.measure_window.sec() * (reanchor_ ? 0.5 : 1.0);
  if (!mid_set_ && (t - win_start_).sec() >= 0.5 * need_window) {
    win_mid_ = t;
    mid_set_ = true;
    for (Tracked& f : flows_) {
      f.mid_delivered = f.last_delivered;
      f.mid_sent = f.last_sent;
      f.mid_dropped = f.last_dropped;
    }
  }
  dwell_ = in_band ? dwell_ + 1 : 0;
  const bool steady = dwell_ >= cfg_.dwell_checks;
  if (steady) stats_.steady_detected_sec += dt;
  if (!steady || cfg_.observe_only) return;
  const double window_sec = (t - win_start_).sec();
  if (window_sec < need_window) return;

  // Jump to just short of the next workload boundary (or experiment
  // end); the margin lets the packet engine re-absorb the transient.
  // A capped jump stops mid-phase instead — no boundary, no margin.
  const SimTime boundary = std::min(warp_.next_boundary(), end_);
  SimTime target = boundary - cfg_.margin;
  bool capped = false;
  if (cfg_.max_extrapolation_windows > 0.0) {
    const SimTime cap =
        t + TimeDelta::seconds(cfg_.max_extrapolation_windows * cfg_.measure_window.sec());
    if (cap < target) {
      target = cap;
      capped = true;
    }
  }
  stats_.cert_attempts += 1;
  emit_cert(FluidCertEvent::Kind::kAttempt, t, window_sec);
  if (!(target > t) || target - t < cfg_.min_skip) {
    stats_.cert_reject_min_skip += 1;
    emit_cert(FluidCertEvent::Kind::kRejectMinSkip, t, window_sec,
              target > t ? (target - t).sec() : 0.0);
    return;
  }
  if (!halves_agree(t)) {
    stats_.cert_reject_drift += 1;
    emit_cert(FluidCertEvent::Kind::kRejectDrift, t, window_sec);
    slide_window();  // re-measure from the window's second half
    return;
  }
  if (!solve_allocation(window_sec)) {
    stats_.cert_reject_agreement += 1;
    emit_cert(FluidCertEvent::Kind::kRejectAgreement, t, window_sec);
    return;
  }
  stats_.cert_dwell_at_accept_sum += static_cast<double>(dwell_);
  emit_cert(FluidCertEvent::Kind::kAccept, t, window_sec, (target - t).sec());
  if (capped) emit_cert(FluidCertEvent::Kind::kReanchor, t, window_sec, (target - t).sec());
  jump(target, capped);
}

// Fill window-mean rates, solve the weighted max-min allocation for the
// measured demands, and check the means agree with it.  The window
// means — not the analytic shares — are what a jump synthesizes from:
// they ARE the packet engine's steady behaviour (integrated over
// several oscillation periods), mechanism quirks included.  The
// analytic solution is the correctness oracle: converged-to-the-WRONG-
// fixed-point states (e.g. a flow starved by a bug) fail the agreement
// gate and keep running packet-level.
bool FluidController::solve_allocation(double window_sec) {
  double total_meas = 0.0;
  bool any_active = false;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Tracked& f = flows_[i];
    f.mean_delivered = static_cast<double>(f.last_delivered - f.win_delivered) / window_sec;
    f.mean_sent = static_cast<double>(f.last_sent - f.win_sent) / window_sec;
    f.mean_dropped = static_cast<double>(f.last_dropped - f.win_dropped) / window_sec;
    alloc_flows_[i].demand = f.mean_sent > 1e-9 ? f.mean_sent : 0.0;
    any_active = any_active || f.mean_sent > 1e-9;
    total_meas += f.mean_delivered;
  }
  alloc_ = water_fill(caps_, alloc_flows_);
  if (!any_active) return true;  // idle network: nothing to disagree about
  if (cfg_.agreement_band <= 0.0) return true;

  // The oracle checks three invariants rather than per-flow equality
  // with the ideal: core-stateless mechanisms structurally deviate from
  // exact max-min on multi-bottleneck paths (multi-hop flows lose to
  // compounded per-hop drops; the capacity they leave behind is
  // redistributed to their neighbours), and that deviation IS the
  // object of study — the fluid model must reproduce it, not reject it.
  //
  // (1) No starvation: each flow's measured rate stays above its ideal
  //     share shrunk by (1 - band)^hops — the compounded per-hop loss a
  //     healthy mechanism can legitimately show.
  double total_ideal = 0.0;
  link_load_.assign(caps_.size(), 0.0);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    total_ideal += alloc_[i];
    const double meas = flows_[i].mean_delivered;
    for (std::uint32_t l : alloc_flows_[i].links) {
      if (l < link_load_.size()) link_load_[l] += meas;
    }
    if (meas < cfg_.rate_floor_pps && alloc_[i] < cfg_.rate_floor_pps) continue;
    const double hops = static_cast<double>(std::max<std::size_t>(alloc_flows_[i].links.size(), 1));
    // One full measurement floor of slack: rates below the floor are
    // not per-flow measurable, so the bound must not bind there — a
    // multi-hop flow compounded down to ~1 pkt/s is indistinguishable
    // from its own quantization noise, not evidence of a broken model.
    const double lo =
        alloc_[i] * std::pow(1.0 - cfg_.agreement_band, hops) - cfg_.rate_floor_pps;
    if (meas < lo) return false;
  }
  // (2) Physical feasibility: measured per-link totals cannot exceed
  //     capacity.  Delivered counters physically can't, so a violation
  //     means the capacity vector or link indexing handed to the
  //     controller is wrong — refuse to extrapolate from a broken model.
  for (std::size_t l = 0; l < caps_.size(); ++l) {
    if (link_load_[l] > caps_[l] * (1.0 + 0.5 * cfg_.agreement_band) + cfg_.rate_floor_pps) {
      return false;
    }
  }
  // (3) Aggregate agreement: total delivered within the band of the
  //     total ideal allocation — the "right fixed point overall" check.
  return std::abs(total_meas - total_ideal) <=
         cfg_.agreement_band * std::max(total_ideal, cfg_.rate_floor_pps);
}

void FluidController::jump(SimTime target, bool capped) {
  const SimTime t0 = sim_.exp_now();
  const TimeDelta skip = target - t0;
  const double dsec = skip.sec();

  tracker_.sample_cumulative(t0);
  const auto whole = [](double rate, double dt, double& residue) -> std::uint64_t {
    const double want = std::max(0.0, rate) * dt + residue;
    const double n = std::floor(want);
    residue = want - n;
    return static_cast<std::uint64_t>(n);
  };
  // Fluid model of the skipped span: every flow keeps sending,
  // delivering and dropping at its measurement-window mean rates — the
  // packet engine's own steady behaviour, extrapolated.  With series on,
  // the span is synthesized chunk by chunk on the cumulative-sampling
  // grid so the staircase the periodic sampler would have recorded is
  // still there (step-interpolating readers would otherwise see the
  // whole span's service as one cliff at the jump's end).  Counters-only
  // runs take the span in a single O(flows) chunk.
  const bool series_on = tracker_.series_enabled();
  const double step = std::max(1e-9, cfg_.synth_sample_period.sec());
  double done = 0.0;
  while (done < dsec) {
    const double d = series_on ? std::min(step, dsec - done) : dsec - done;
    for (Tracked& f : flows_) {
      const std::uint64_t nd = whole(f.mean_delivered, d, f.res_delivered);
      const std::uint64_t ns = whole(f.mean_sent, d, f.res_sent);
      const std::uint64_t nr = whole(f.mean_dropped, d, f.res_dropped);
      if (nd != 0 || ns != 0 || nr != 0) {
        tracker_.add_synthesized(f.id, nd, ns, nr);
        f.last_delivered += nd;
        f.last_sent += ns;
        f.last_dropped += nr;
      }
      stats_.synth_delivered += nd;
      stats_.synth_sent += ns;
      stats_.synth_dropped += nr;
    }
    done += d;
    if (series_on && done < dsec) tracker_.sample_cumulative(t0 + TimeDelta::seconds(done));
  }
  for (Tracked& f : flows_) {
    if (f.mean_delivered > 0.0) {
      // Bracket the skipped span in the allotted-rate series at the
      // fluid rate, so piecewise-constant window averages integrate the
      // phase mean instead of carrying whatever control-loop oscillation
      // sample happened to come last before the jump.
      tracker_.record_rate(f.id, t0, f.mean_delivered);
      tracker_.record_rate(f.id, target, f.mean_delivered);
    }
  }

  sim_.advance_exp_offset(skip);
  tracker_.sample_cumulative(sim_.exp_now());
  warp_.on_offset_advanced();
  last_tick_ = sim_.exp_now();  // the skipped span is not a measurement interval
  reset_window(last_tick_);     // synthesized counters are not measurements either
  reanchor_ = capped;

  stats_.jumps += 1;
  stats_.fast_forwarded_sec += dsec;
  stats_.events_elided_est +=
      static_cast<std::uint64_t>(std::max(0.0, event_rate_) * dsec);

  // The runner's outer loop recomputes its engine-time deadline
  // (experiment_end - offset) after every stop.
  sim_.stop();
}

void FluidController::emit_cert(FluidCertEvent::Kind kind, SimTime t, double window_sec,
                                double extra) {
  if (probe_ == nullptr) return;
  FluidCertEvent e;
  e.kind = kind;
  e.t_sec = t.sec();
  e.dwell = dwell_;
  e.window_sec = window_sec;
  e.extra = extra;
  probe_->on_cert_event(e);
}

}  // namespace corelite::sim::fluid

// Hierarchical timing wheel for the short-horizon event classes.
//
// The event population of a packet-level run is dominated by link
// transmit completions and paced emission timers: near-monotonic,
// microseconds-to-milliseconds ahead of the clock.  A comparison heap
// pays O(log n) pointer-chasing per event for that traffic; a timing
// wheel pays O(1) array writes (the `hrtimer`/`sch_fq` pattern).  This
// wheel is the primary tier of EventQueue's dispatch structure; the
// 4-ary heap stays behind it as the overflow tier for whatever the
// wheel declines (see try_insert).
//
// Geometry: kLevels levels of kSlots slots; a level-0 slot is one tick
// (2^-17 s ~ 7.6 us) wide and each level up widens slots by 2^8, so
// level L slot widths are the power-of-two 2^(8L) ticks and four levels
// cover ~2^32 ticks (~9 hours) of horizon.  An entry is filed at the
// level where its tick first diverges from the cursor's bit path
// (bit_width(tick ^ cursor) — the classic hierarchical rule), which
// guarantees its slot index at that level is strictly ahead of the
// cursor: no slot ever mixes entries from different wheel laps, so
// occupancy bitmaps are unambiguous and no modular-lap arithmetic is
// needed anywhere.
//
// Lazy cascade: entries sit at their insertion level until the cursor
// enters their slot; collect_next() then re-files them one or more
// levels down (cost: one array write per entry per level crossed, at
// most kLevels-1 times in an entry's life, typically once).  Entries
// never move until the wheel front actually reaches them, so cancelled
// events simply expire in place (EventQueue filters them on pop, same
// lazy discipline as the heap).
//
// Exactness: the wheel quantizes only the *bucketing*; entries carry
// their full (double time, sequence key) and EventQueue sorts each
// collected slot and merges it against the heap root, so the global
// firing order is bit-identical to a heap-only engine — the golden
// determinism tests pin this.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/hotpath.h"

namespace corelite::sim {

/// One scheduled event as the dispatch tiers see it: the exact fire
/// time and the packed (sequence | flags | slot) key EventQueue orders
/// ties by.  16 bytes, trivially copyable.
struct WheelEntry {
  double at;
  std::uint64_t key;
};

class TimerWheel {
 public:
  static constexpr unsigned kLevelBits = 8;             ///< 256 slots per level
  static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;
  static constexpr unsigned kLevels = 4;
  /// Level-0 tick width is 2^-17 s (~7.6 us): fine enough that a slot
  /// rarely holds more than a handful of same-tick events, coarse
  /// enough that a 1 ms propagation delay spans only ~131 ticks.
  static constexpr double kTicksPerSecond = 131072.0;  // 2^17

  TimerWheel() {
    // Pre-size every slot so the steady state — including the first lap
    // over far-out slots — never allocates on the scheduling path.
    for (Level& lv : levels_) {
      for (auto& slot : lv.slots) slot.reserve(4);
    }
  }

  /// Entries currently filed in the wheel (collected ones excluded).
  [[nodiscard]] std::size_t count() const { return count_; }

  /// File an entry, or return false if it belongs to the overflow heap:
  /// non-finite or absurdly large times, times at or before the cursor
  /// tick (the heap preserves exact ordering against the slot currently
  /// being drained), and times beyond the wheel horizon.
  bool try_insert(double at, std::uint64_t key) {
    const double ticks = at * kTicksPerSecond;
    if (!(ticks >= 0.0) || ticks >= kMaxTick) return false;  // NaN/inf/too far
    const std::uint64_t tick = static_cast<std::uint64_t>(ticks);
    if (tick <= cursor_) return false;
    const unsigned level =
        (static_cast<unsigned>(std::bit_width(tick ^ cursor_)) - 1u) / kLevelBits;
    if (level >= kLevels) return false;  // beyond the top-level window
    place(level, tick, WheelEntry{at, key});
    ++count_;
    return true;
  }

  /// Advance the cursor to the earliest occupied level-0 tick, cascading
  /// higher-level slots as the cursor enters them, and append that
  /// tick's entries to `out` (unsorted — the caller orders by full
  /// (time, seq)).  Precondition: count() > 0.
  void collect_next(std::vector<WheelEntry>& out) {
    assert(count_ > 0 && "collect_next on an empty wheel");
    for (;;) {
      // Nearest occupied level-0 slot in the cursor's current window.
      // Scanned from the cursor's own index inclusive: cascades file
      // tick == cursor entries right there.
      Level& l0 = levels_[0];
      const int j0 = l0.entries == 0 ? -1 : scan_from(l0.occupied, cursor_ & (kSlots - 1));
      if (j0 >= 0) {
        cursor_ = (cursor_ & ~kIndexMask) | static_cast<std::uint64_t>(j0);
        auto& slot = l0.slots[static_cast<std::size_t>(j0)];
        count_ -= slot.size();
        l0.entries -= slot.size();
        out.insert(out.end(), slot.begin(), slot.end());
        slot.clear();
        clear_bit(l0.occupied, static_cast<std::size_t>(j0));
        return;
      }
      // Level-0 window exhausted: enter the nearest occupied slot of the
      // lowest level that has one ahead, and spill it downward.  Empty
      // levels (the common case above level 0) are skipped by their
      // entry count before any bitmap word is touched.
      unsigned level = 1;
      for (; level < kLevels; ++level) {
        Level& lv = levels_[level];
        if (lv.entries == 0) continue;
        const unsigned shift = kLevelBits * level;
        const std::size_t cur = (cursor_ >> shift) & (kSlots - 1);
        const int j = scan_from(lv.occupied, cur + 1);
        if (j < 0) continue;  // this window exhausted too — go up a level
        // Align the cursor to the slot's first tick, then re-file its
        // entries at the level where they now diverge from the cursor.
        cursor_ = (((cursor_ >> shift) & ~kIndexMask) | static_cast<std::uint64_t>(j))
                  << shift;
        auto& slot = lv.slots[static_cast<std::size_t>(j)];
        clear_bit(lv.occupied, static_cast<std::size_t>(j));
        lv.entries -= slot.size();
        hotpath_counters().wheel_cascades += slot.size();
        for (const WheelEntry& e : slot) {
          const std::uint64_t tick =
              static_cast<std::uint64_t>(e.at * kTicksPerSecond);
          const std::uint64_t diverged = tick ^ cursor_;
          const unsigned nl =
              diverged == 0
                  ? 0u
                  : (static_cast<unsigned>(std::bit_width(diverged)) - 1u) / kLevelBits;
          place(nl, tick, e);
        }
        slot.clear();
        break;  // rescan level 0, which the cascade just populated
      }
      assert(level < kLevels && "count_ > 0 but no occupied slot found");
    }
  }

  /// Remove every entry (all levels) into `out`, in no particular
  /// order.  Used by EventQueue::clear(); the cursor keeps its place.
  void drain_all(std::vector<WheelEntry>& out) {
    for (Level& lv : levels_) {
      for (auto& slot : lv.slots) {
        out.insert(out.end(), slot.begin(), slot.end());
        slot.clear();
      }
      for (std::uint64_t& w : lv.occupied) w = 0;
      lv.entries = 0;
    }
    count_ = 0;
  }

 private:
  static constexpr std::uint64_t kIndexMask = kSlots - 1;
  /// Ticks must survive the double->uint64 cast; anything this far out
  /// (well past the 2^32-tick horizon) overflows to the heap anyway.
  static constexpr double kMaxTick = 9.0e18;

  struct Level {
    std::array<std::vector<WheelEntry>, kSlots> slots;
    std::uint64_t occupied[kSlots / 64] = {};
    /// Entries filed at this level.  Steady-state traffic concentrates
    /// in level 0, so the upper levels are empty most of the time; the
    /// count lets collect_next() skip their occupancy scans outright
    /// instead of walking four empty bitmap words per level per call.
    std::size_t entries = 0;
  };

  void place(unsigned level, std::uint64_t tick, WheelEntry e) {
    const std::size_t idx = (tick >> (kLevelBits * level)) & kIndexMask;
    Level& lv = levels_[level];
    lv.slots[idx].push_back(e);
    lv.occupied[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++lv.entries;
  }

  static void clear_bit(std::uint64_t* words, std::size_t idx) {
    words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  /// Index of the first set bit at or after `from`, or -1.
  static int scan_from(const std::uint64_t* words, std::size_t from) {
    if (from >= kSlots) return -1;
    std::size_t w = from >> 6;
    std::uint64_t bits = words[w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (bits != 0) {
        return static_cast<int>((w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      }
      if (++w == kSlots / 64) return -1;
      bits = words[w];
    }
  }

  std::array<Level, kLevels> levels_;
  std::uint64_t cursor_ = 0;  ///< level-0 tick the wheel front sits on
  std::size_t count_ = 0;
};

}  // namespace corelite::sim

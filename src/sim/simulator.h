// The discrete-event simulation kernel.
//
// A Simulator owns the virtual clock, the event queue and the random
// source.  Components schedule callbacks against it; `run_until`
// advances virtual time by firing events in timestamp order.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/units.h"

namespace corelite::sim {

/// Controls a repeating timer created by Simulator::every().
/// Cancelling stops all future firings; safe to copy and to call on an
/// empty handle.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  void cancel() {
    if (control_) control_->cancelled = true;
  }
  [[nodiscard]] bool active() const { return control_ && !control_->cancelled; }

 private:
  friend class Simulator;
  struct Control {
    bool cancelled = false;
  };
  explicit PeriodicHandle(std::shared_ptr<Control> c) : control_{std::move(c)} {}
  std::shared_ptr<Control> control_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x5eedc0de) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `at` (must not be in the past).
  EventHandle at(SimTime at, EventQueue::Callback cb);

  /// Schedule `cb` after a relative delay from now.
  EventHandle after(TimeDelta delay, EventQueue::Callback cb);

  /// Fire-and-forget variants: no handle, no cancellation, and no
  /// per-event control-block allocation.  The forwarding plane uses
  /// these for its per-hop completion events; templated + inline so the
  /// closure is constructed directly in its queue slot.
  template <class F>
  void at_detached(SimTime at, F&& f) {
    assert(at >= now_ && "cannot schedule an event in the past");
    queue_.schedule_detached(at, std::forward<F>(f));
  }
  template <class F>
  void after_detached(TimeDelta delay, F&& f) {
    assert(delay >= TimeDelta::zero());
    at_detached(now_ + delay, std::forward<F>(f));
  }

  /// Schedule `cb` every `period`, until the returned handle is
  /// cancelled.  The first firing happens after `first_after` (defaults
  /// to one period); passing a randomized phase here desynchronizes
  /// periodic components, as real distributed timers are.
  ///
  /// Templated on the callable: each tick invokes the body directly
  /// through one shared state block — no std::function dispatch and no
  /// weak_ptr lock on the (per-epoch, per-edge-router) tick path.
  template <class F>
  PeriodicHandle every(TimeDelta period, F cb, TimeDelta first_after = TimeDelta::infinite()) {
    assert(period > TimeDelta::zero());
    if (!first_after.is_finite()) first_after = period;
    auto state = std::make_shared<PeriodicState<F>>(std::move(cb));
    PeriodicHandle handle{std::shared_ptr<PeriodicHandle::Control>{state, state.get()}};
    arm_periodic(std::move(state), period, now_ + first_after);
    return handle;
  }

  /// Run events until the queue drains or virtual time would pass `deadline`.
  /// The clock is left at min(deadline, time of last event) — i.e. it
  /// advances to `deadline` even if the queue drained earlier.
  void run_until(SimTime deadline);

  /// Run until the event queue is empty.
  void run();

  /// Batched-transmission support (see Link::on_serialized).  True iff a
  /// callback running now may process one extra logical event at time
  /// `t` inline — i.e. no queued event and not the active run deadline
  /// could interleave strictly before it.  The queue peek is exact: an
  /// event at exactly `t` was scheduled earlier (lower sequence number)
  /// than the inline event would have been, so ties refuse the fusion.
  /// Always false outside run_until()/run().
  [[nodiscard]] bool can_advance_inline(SimTime t) const {
    return !stopped_ && t <= run_deadline_ && queue_.next_time() > t;
  }

  /// Advance the clock to `t` and account one logically processed
  /// event, exactly as if an event scheduled for `t` had fired — which
  /// keeps events_processed() identical whether a completion was fused
  /// into a batch or dispatched through the queue.  Callers must have
  /// checked can_advance_inline(t) first.
  void advance_inline(SimTime t) {
    assert(t >= now_ && "cannot advance the clock backwards");
    now_ = t;
    ++processed_;
  }

  /// Request that the current run stops after the in-flight event returns.
  void stop() { stopped_ = true; }

  /// Experiment-time view used by the fluid fast-forward engine.  The
  /// engine clock (now()) stays continuous across a fast-forward; the
  /// skipped span accumulates here, so exp_now() = now() + exp_offset()
  /// is the position on the experiment's time axis.  With the offset at
  /// zero (fluid off) exp_now() is exactly now() — adding +0.0 leaves
  /// every double bit pattern this clock produces unchanged.
  [[nodiscard]] SimTime exp_now() const { return now_ + exp_offset_; }
  [[nodiscard]] TimeDelta exp_offset() const { return exp_offset_; }
  void advance_exp_offset(TimeDelta skipped) {
    assert(skipped >= TimeDelta::zero() && "experiment time cannot run backwards");
    exp_offset_ += skipped;
  }

  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Keep `resource` alive until after the event queue is destroyed.
  /// Components whose storage is referenced from pending callbacks
  /// (e.g. the network's packet pool) register themselves here, which
  /// lets the callbacks hold raw pointers instead of paying refcount
  /// traffic on the hot path.
  void retain(std::shared_ptr<void> resource) { retained_.push_back(std::move(resource)); }

 private:
  /// Cancellation flag + user body for one every() chain.  The pending
  /// tick's closure is the only owner; cancelling orphans the chain at
  /// its next firing and the whole block is reclaimed.
  template <class F>
  struct PeriodicState : PeriodicHandle::Control {
    explicit PeriodicState(F b) : body(std::move(b)) {}
    F body;
  };

  /// Each tick MOVES the state's shared_ptr from the dying closure into
  /// the next one (the closure outlives its own invocation, so moving a
  /// capture out mid-call is safe) — zero refcount traffic on the
  /// epoch-tick path instead of an atomic pair per tick.
  template <class F>
  void arm_periodic(std::shared_ptr<PeriodicState<F>> state, TimeDelta period, SimTime at) {
    queue_.schedule_detached(at, [this, state = std::move(state), period]() mutable {
      if (state->cancelled) return;
      state->body();
      if (state->cancelled) return;
      arm_periodic(std::move(state), period, now_ + period);
    });
  }

  /// Sentinel making can_advance_inline() false outside a run loop.
  static constexpr SimTime kNotRunning = SimTime::zero() - TimeDelta::infinite();

  // Declared before queue_: members are destroyed in reverse order, so
  // the retained resources outlive every pending callback.
  std::vector<std::shared_ptr<void>> retained_;
  EventQueue queue_;
  Rng rng_;
  SimTime now_ = SimTime::zero();
  TimeDelta exp_offset_ = TimeDelta::zero();  ///< experiment time skipped by fast-forwards
  SimTime run_deadline_ = kNotRunning;  ///< deadline of the active run loop
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace corelite::sim

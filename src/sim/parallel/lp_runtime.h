// Conservative parallel discrete-event runtime.
//
// An LpRuntime owns K Simulators — one per logical process (LP).  Each
// LP keeps its private event queue (the existing wheel+heap tiering),
// clock, and RNG stream; LPs interact only through per-(src, dst)
// mailboxes of timestamped messages.  Execution is barrier-stepped:
//
//   window k covers virtual time (w_{k-1}, w_k], w_k = (k+1) * W
//   1. every LP runs its local events up to w_k        (parallel)
//   2. barrier
//   3. every dst LP drains its mailboxes               (parallel)
//   4. barrier, next window
//
// W is the partition's lookahead: the minimum propagation delay over
// cut links.  Safety: a cross-LP message created at local time c during
// window k carries timestamp c + prop >= c + W > w_{k-1} + W = w_k, so
// it can only be *due* in window k+1 or later — draining mailboxes at
// the barrier is always early enough, and no LP ever sees an event in
// its past.  (The boundary case c = w_{k-1}, prop = W lands exactly at
// w_k and is processed at the correct virtual time w_k at the start of
// window k+1.)
//
// Determinism contract (the honest one):
//   - The digest of a run is a pure function of (spec, lp_count).  It
//     does NOT depend on how many OS threads drive the LPs: thread w of
//     T executes LPs {i : i mod T == w} *sequentially in LP order*, LPs
//     share no mutable state inside a window, and mailboxes drain in
//     fixed (src LP asc, FIFO within src) order on the dst LP's own
//     worker — so T=1 and T=8 replay the identical event sequence.
//     Tests pin digest(lp_threads=1) == digest(lp_threads=4).
//   - lp_count == 1 is bit-identical to the legacy serial engine: the
//     runtime degenerates to a plain run_until on one Simulator seeded
//     with the raw spec seed, the exact code path the golden fig3/5/7/9
//     digests pin.
//   - lp_count N >= 2 uses per-LP RNG streams derived from the spec
//     seed (derive_lp_seed), so its digests differ from serial — by
//     construction.  A serial engine draws every packet's randomness
//     from ONE generator in global event order; reproducing that stream
//     under parallel execution would require executing serially.  What
//     the parallel engine guarantees instead is reproducibility: any
//     machine, any thread count, same (spec, N) => same digest.
//
// Interaction with PR 5's inline link batching: a link may fuse the
// next transmission completion only when can_advance_inline() proves
// nothing can interleave — and the window end w_k is installed as the
// run deadline, so fusions never cross a barrier.  Mailbox messages
// carry timestamps strictly(ish) beyond w_k, so they cannot interleave
// with any fused completion either; digests are invariant under
// CORELITE_NO_BATCH / CORELITE_NO_WHEEL, which tests also pin.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/parallel/lp_probe.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace corelite::sim::par {

/// Deterministic per-LP seed stream: splitmix64 over (seed, lp) with a
/// distinct additive tag so LP streams never collide with the sweep's
/// derive_seed(base, repeat) streams.
[[nodiscard]] std::uint64_t derive_lp_seed(std::uint64_t seed, std::size_t lp);

class LpRuntime {
 public:
  /// `lp_count` logical processes.  With lp_count == 1 the single
  /// Simulator is seeded with the raw `seed` (legacy bit-identity);
  /// otherwise every LP i gets derive_lp_seed(seed, i).
  ///
  /// `threads_requested` == 0 (auto) asks the process-wide ThreadBudget
  /// for up to lp_count - 1 extra threads and logs when clamped; an
  /// explicit value is honored exactly (capped at lp_count) — tests and
  /// benches need exact thread counts.
  LpRuntime(std::size_t lp_count, std::uint64_t seed, TimeDelta lookahead,
            std::size_t threads_requested = 0);

  LpRuntime(const LpRuntime&) = delete;
  LpRuntime& operator=(const LpRuntime&) = delete;
  ~LpRuntime();

  [[nodiscard]] std::size_t lp_count() const { return sims_.size(); }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] TimeDelta lookahead() const { return lookahead_; }
  [[nodiscard]] Simulator& lp_sim(std::size_t lp) { return *sims_[lp]; }

  /// Post a message from src LP to dst LP, due at absolute time `at`.
  /// Must be called from the thread currently executing src's window
  /// (the single writer of that mailbox).  `at` must be >= src's clock
  /// plus the lookahead — the conservative safety condition.
  void post(std::size_t src_lp, std::size_t dst_lp, SimTime at, std::function<void()> fn);

  /// Run every LP to `deadline` in lookahead-sized barrier windows.
  /// With one LP this is exactly Simulator::run_until (no windows, no
  /// barriers, no threads).
  void run_until(SimTime deadline);

  /// Sum of events processed across LPs.
  [[nodiscard]] std::uint64_t events_processed() const;

  /// Attach an LP runtime profiler (see lp_probe.h).  Pure observation:
  /// event order and digests are identical with or without one; with
  /// none attached the worker loop takes no timestamps at all.
  void set_probe(LpProbe* probe) { probe_ = probe; }

 private:
  struct Mailbox {
    struct Msg {
      SimTime at;
      std::function<void()> fn;
    };
    // Padded out so mailboxes written by different src workers never
    // share a cache line.
    alignas(64) std::vector<Msg> msgs;
  };

  void drain_mailboxes(std::size_t dst_lp, std::uint64_t window);
  void worker_loop(std::size_t w, SimTime deadline, void* barrier);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Mailbox> boxes_;  ///< boxes_[src * K + dst]
  TimeDelta lookahead_ = TimeDelta::zero();
  std::size_t threads_ = 1;
  std::size_t budget_granted_ = 0;  ///< extra tokens held from ThreadBudget
  LpProbe* probe_ = nullptr;
};

}  // namespace corelite::sim::par

// Topology-aware partitioning of a network graph into logical
// processes (LPs) for the conservative parallel engine.
//
// Input is a topology-agnostic undirected graph: node count, edges with
// propagation delays, and a `bottleneck` flag marking the links a
// scenario designates as its congestion points.  The partitioner cuts
// the graph into `lp_count` contiguous blocks of a deterministic BFS
// order and then nudges each block boundary so the cut prefers to land
// ON designated bottleneck links — those are where the workload already
// serializes, so they are the natural LP frontier — while keeping the
// total number of cut links low (every cut link turns its packets into
// cross-LP mailbox messages).
//
// The lookahead of the resulting partition is the minimum propagation
// delay over all cut links: a conservative window of that length can
// run every LP independently, because no packet sent during the window
// can arrive at another LP before the window ends (see lp_runtime.h).
// A partition whose lookahead would be zero (some cut link has zero
// propagation delay) is rejected: the plan falls back to a single LP
// and sets `zero_lookahead_fallback` so callers can warn instead of
// deadlocking or diverging.
//
// Everything here is a pure function of its inputs — no RNG, no global
// state — so a (topology, lp_request) pair always yields the same plan
// and the same run digest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/units.h"

namespace corelite::sim::par {

struct LpGraphEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double delay_sec = 0.0;
  bool bottleneck = false;  ///< designated congestion link: prefer cutting here
};

struct LpGraph {
  std::size_t nodes = 0;
  std::vector<LpGraphEdge> edges;
};

struct LpPlan {
  std::size_t requested = 1;  ///< what the caller asked for (--lp N)
  std::size_t lp_count = 1;   ///< what the partitioner produced
  /// lp_of_node[i] in [0, lp_count) for every graph node.
  std::vector<std::uint32_t> lp_of_node;
  /// min propagation delay over cut links; zero when lp_count == 1.
  TimeDelta lookahead = TimeDelta::zero();
  std::size_t cut_links = 0;        ///< edges crossing an LP boundary
  std::size_t cut_bottlenecks = 0;  ///< ... of which are designated bottlenecks
  bool zero_lookahead_fallback = false;  ///< true: request rejected, serial plan
};

/// Partition `g` into up to `lp_request` LPs (clamped to the node
/// count).  lp_request <= 1 returns the trivial serial plan.
[[nodiscard]] LpPlan partition_lp_graph(const LpGraph& g, std::size_t lp_request);

}  // namespace corelite::sim::par

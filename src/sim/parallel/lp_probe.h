// Observation interface for the conservative parallel runtime.
//
// LpRuntime reports, per barrier window: how long each LP's event batch
// took and how many events it processed (the measured per-LP load the
// ROADMAP's LP-aware balancer needs), how long each worker sat in each
// barrier, and the depth of every non-empty mailbox flush (cross-LP
// traffic).  Threading contract: on_lp_window / on_mailbox_drain for LP
// i are only ever called from the worker that owns LP i (i mod threads),
// and on_barrier_wait(w, ...) only from worker w — an implementation
// with per-LP / per-worker slots needs no locks.  Event and message
// counts are thread-count-invariant (the same deterministic schedule is
// replayed at any T); wall-clock figures naturally are not.
//
// No probe attached (the default) costs nothing: the runtime takes no
// timestamps and the worker loop is unchanged.  The degenerate 1-LP
// runtime never calls a probe — it has no windows, barriers or
// mailboxes to report.
#pragma once

#include <cstddef>
#include <cstdint>

namespace corelite::sim::par {

class LpProbe {
 public:
  virtual ~LpProbe() = default;

  /// Called once per run_until on the calling thread, before workers
  /// start.  `windows_estimate` = ceil(deadline / lookahead).
  virtual void on_run_start(std::size_t lp_count, std::size_t threads,
                            std::uint64_t windows_estimate) = 0;

  /// LP `lp` ran its events for barrier window `window` in `run_ms`
  /// wall milliseconds, processing `events` events.
  virtual void on_lp_window(std::size_t lp, std::uint64_t window, double run_ms,
                            std::uint64_t events) = 0;

  /// Worker `w` waited `wait_ms` wall milliseconds in a barrier during
  /// `window` (two barriers per window; calls accumulate).
  virtual void on_barrier_wait(std::size_t worker, std::uint64_t window, double wait_ms) = 0;

  /// A non-empty mailbox into `dst_lp` flushed `msgs` messages at the
  /// end of `window`.
  virtual void on_mailbox_drain(std::size_t dst_lp, std::uint64_t window, std::size_t msgs) = 0;
};

}  // namespace corelite::sim::par

#include "sim/parallel/lp_partition.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace corelite::sim::par {

namespace {

/// Deterministic BFS order from node 0; neighbors expand in edge-list
/// order.  Disconnected leftovers (none in practice — runners assert
/// connectivity) append in index order.
std::vector<std::uint32_t> bfs_order(const LpGraph& g) {
  std::vector<std::vector<std::uint32_t>> adj(g.nodes);
  for (const LpGraphEdge& e : g.edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::vector<std::uint32_t> order;
  order.reserve(g.nodes);
  std::vector<bool> seen(g.nodes, false);
  std::queue<std::uint32_t> frontier;
  for (std::uint32_t root = 0; root < g.nodes; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    frontier.push(root);
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      order.push_back(u);
      for (std::uint32_t v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          frontier.push(v);
        }
      }
    }
  }
  return order;
}

struct CutScore {
  std::size_t non_bottleneck_cuts = 0;
  std::size_t total_cuts = 0;
};

/// Cut statistics of a block assignment: block_of[pos[node]] per edge
/// endpoint.
CutScore score_cut(const LpGraph& g, const std::vector<std::uint32_t>& block_of_node) {
  CutScore s;
  for (const LpGraphEdge& e : g.edges) {
    if (block_of_node[e.a] != block_of_node[e.b]) {
      ++s.total_cuts;
      if (!e.bottleneck) ++s.non_bottleneck_cuts;
    }
  }
  return s;
}

void assign_blocks(const std::vector<std::uint32_t>& order,
                   const std::vector<std::size_t>& bounds, std::size_t k,
                   std::vector<std::uint32_t>& block_of_node) {
  std::size_t block = 0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    while (block + 1 < k && pos >= bounds[block]) ++block;
    block_of_node[order[pos]] = static_cast<std::uint32_t>(block);
  }
}

}  // namespace

LpPlan partition_lp_graph(const LpGraph& g, std::size_t lp_request) {
  LpPlan plan;
  plan.requested = std::max<std::size_t>(1, lp_request);
  plan.lp_of_node.assign(g.nodes, 0);
  const std::size_t k = std::min(plan.requested, g.nodes);
  if (k <= 1 || g.nodes == 0) return plan;

  const std::vector<std::uint32_t> order = bfs_order(g);
  const std::size_t n = order.size();

  // bounds[b] = first BFS position of block b+1 (k-1 internal bounds).
  std::vector<std::size_t> bounds(k - 1);
  for (std::size_t b = 0; b + 1 < k; ++b) bounds[b] = ((b + 1) * n) / k;

  std::vector<std::uint32_t> block_of(g.nodes, 0);
  assign_blocks(order, bounds, k, block_of);
  CutScore best = score_cut(g, block_of);

  // Boundary refinement: greedily shift each boundary within a small
  // window to (1) minimize non-bottleneck cuts — i.e. land the cut on
  // designated bottleneck links — then (2) minimize total cuts, with
  // the smallest |shift| (negative first on ties) as final tie-break.
  // One left-to-right pass; each boundary is settled with the others
  // fixed, which is deterministic and good enough for the chain-ish
  // graphs the generators emit.
  const std::ptrdiff_t window =
      static_cast<std::ptrdiff_t>(std::max<std::size_t>(1, n / (2 * k)));
  for (std::size_t b = 0; b + 1 < k; ++b) {
    const std::size_t lo = (b == 0) ? 1 : bounds[b - 1] + 1;
    const std::size_t hi = (b + 2 < k) ? bounds[b + 1] - 1 : n - 1;
    const std::size_t base = bounds[b];
    std::size_t best_pos = base;
    for (std::ptrdiff_t mag = 0; mag <= window; ++mag) {
      for (const std::ptrdiff_t d : {-mag, mag}) {
        const std::ptrdiff_t cand = static_cast<std::ptrdiff_t>(base) + d;
        if (cand < static_cast<std::ptrdiff_t>(lo) ||
            cand > static_cast<std::ptrdiff_t>(hi)) {
          continue;
        }
        bounds[b] = static_cast<std::size_t>(cand);
        assign_blocks(order, bounds, k, block_of);
        const CutScore s = score_cut(g, block_of);
        if (s.non_bottleneck_cuts < best.non_bottleneck_cuts ||
            (s.non_bottleneck_cuts == best.non_bottleneck_cuts &&
             s.total_cuts < best.total_cuts)) {
          best = s;
          best_pos = static_cast<std::size_t>(cand);
        }
        if (d == 0) break;  // -0 == +0: evaluate once
      }
    }
    bounds[b] = best_pos;
  }
  assign_blocks(order, bounds, k, block_of);

  // Lookahead = min delay over cut links; a zero-delay cut link would
  // make conservative windows empty, so the plan degrades to serial.
  double min_delay = std::numeric_limits<double>::infinity();
  std::size_t cuts = 0;
  std::size_t bottleneck_cuts = 0;
  for (const LpGraphEdge& e : g.edges) {
    if (block_of[e.a] == block_of[e.b]) continue;
    ++cuts;
    if (e.bottleneck) ++bottleneck_cuts;
    min_delay = std::min(min_delay, e.delay_sec);
  }
  if (cuts == 0 || !(min_delay > 0.0)) {
    plan.zero_lookahead_fallback = cuts > 0;  // cut exists but gives no lookahead
    return plan;  // lp_count stays 1, lp_of_node stays all-zero
  }

  plan.lp_count = k;
  plan.lp_of_node = std::move(block_of);
  plan.lookahead = TimeDelta::seconds(min_delay);
  plan.cut_links = cuts;
  plan.cut_bottlenecks = bottleneck_cuts;
  return plan;
}

}  // namespace corelite::sim::par

#include "sim/parallel/lp_runtime.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "sim/hotpath.h"
#include "sim/parallel/thread_budget.h"

namespace corelite::sim::par {

std::uint64_t derive_lp_seed(std::uint64_t seed, std::size_t lp) {
  // splitmix64 with an LP-specific tag; the additive multiplier differs
  // from runner::derive_seed's golden-ratio constant so per-repeat and
  // per-LP streams can never alias.
  std::uint64_t z = (seed ^ 0x6c702d73747265616dULL) +
                    0x632be59bd9b4e019ULL * (static_cast<std::uint64_t>(lp) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

LpRuntime::LpRuntime(std::size_t lp_count, std::uint64_t seed, TimeDelta lookahead,
                     std::size_t threads_requested)
    : lookahead_{lookahead} {
  const std::size_t k = std::max<std::size_t>(1, lp_count);
  sims_.reserve(k);
  if (k == 1) {
    // Degenerate runtime: same seed, same engine, same everything as
    // the legacy serial path — golden digests depend on this.
    sims_.push_back(std::make_unique<Simulator>(seed));
    return;
  }
  assert(lookahead_ > TimeDelta::zero() && "multi-LP runtime needs positive lookahead");
  for (std::size_t i = 0; i < k; ++i) {
    sims_.push_back(std::make_unique<Simulator>(derive_lp_seed(seed, i)));
  }
  boxes_.resize(k * k);
  if (threads_requested > 0) {
    threads_ = std::min(threads_requested, k);
  } else {
    budget_granted_ = ThreadBudget::instance().acquire(k - 1);
    threads_ = 1 + budget_granted_;
    if (threads_ < k) {
      // Log the clamp once per process: sweeps construct one runtime
      // per run and would otherwise repeat this hundreds of times.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "corelite: --lp %zu clamped to %zu thread(s) "
                     "(%zu hardware, %zu already reserved); event order and "
                     "digest are unaffected\n",
                     k, threads_, ThreadBudget::hardware_threads(),
                     ThreadBudget::instance().used() - budget_granted_);
      }
    }
  }
}

LpRuntime::~LpRuntime() {
  if (budget_granted_ > 0) ThreadBudget::instance().release(budget_granted_);
}

void LpRuntime::post(std::size_t src_lp, std::size_t dst_lp, SimTime at,
                     std::function<void()> fn) {
  assert(src_lp < sims_.size() && dst_lp < sims_.size() && src_lp != dst_lp);
  ++hotpath_counters().cross_lp_events;
  boxes_[src_lp * sims_.size() + dst_lp].msgs.push_back({at, std::move(fn)});
}

void LpRuntime::drain_mailboxes(std::size_t dst_lp, std::uint64_t window) {
  // Fixed merge order: src LP ascending, FIFO within each mailbox.
  // Messages are scheduled into dst's queue here, which assigns their
  // tie-breaking sequence numbers — identical at any thread count
  // because this function always runs on dst's owning worker, after the
  // barrier made every src's appends visible.
  const std::size_t k = sims_.size();
  Simulator& dst = *sims_[dst_lp];
  for (std::size_t src = 0; src < k; ++src) {
    Mailbox& box = boxes_[src * k + dst_lp];
    if (box.msgs.empty()) continue;
    ++hotpath_counters().mailbox_flushes;
    if (probe_ != nullptr) probe_->on_mailbox_drain(dst_lp, window, box.msgs.size());
    for (Mailbox::Msg& m : box.msgs) {
      dst.at_detached(m.at, std::move(m.fn));
    }
    box.msgs.clear();  // keeps capacity for the next window
  }
}

void LpRuntime::worker_loop(std::size_t w, SimTime deadline, void* barrier) {
  auto& bar = *static_cast<std::barrier<>*>(barrier);
  const std::size_t k = sims_.size();
  const std::size_t t = threads_;
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };
  const bool probing = probe_ != nullptr;
  for (std::uint64_t window = 0;; ++window) {
    // Same expression every run: w_end is a deterministic double.
    SimTime w_end =
        SimTime::seconds(lookahead_.sec() * static_cast<double>(window + 1));
    if (!(w_end < deadline)) w_end = deadline;
    for (std::size_t lp = w; lp < k; lp += t) {
      if (!probing) {
        sims_[lp]->run_until(w_end);
        continue;
      }
      const std::uint64_t ev0 = sims_[lp]->events_processed();
      const auto t0 = Clock::now();
      sims_[lp]->run_until(w_end);
      probe_->on_lp_window(lp, window, ms_since(t0), sims_[lp]->events_processed() - ev0);
    }
    if (probing) {
      const auto b0 = Clock::now();
      bar.arrive_and_wait();
      probe_->on_barrier_wait(w, window, ms_since(b0));
    } else {
      bar.arrive_and_wait();
    }
    if (w == 0) ++hotpath_counters().lp_barriers;
    for (std::size_t lp = w; lp < k; lp += t) drain_mailboxes(lp, window);
    if (probing) {
      const auto b0 = Clock::now();
      bar.arrive_and_wait();
      probe_->on_barrier_wait(w, window, ms_since(b0));
    } else {
      bar.arrive_and_wait();
    }
    if (w == 0) ++hotpath_counters().lp_barriers;
    if (w_end == deadline) break;
  }
  // Extra workers die here; their thread-local hot-path counts must
  // reach the process aggregate before the join.
  if (w != 0) flush_hotpath_counters();
}

void LpRuntime::run_until(SimTime deadline) {
  if (sims_.size() == 1) {
    sims_[0]->run_until(deadline);
    return;
  }
  // One lookahead_ns entry per parallel run: profile rows report the
  // window length the partition achieved.
  hotpath_counters().lookahead_ns +=
      static_cast<std::uint64_t>(lookahead_.sec() * 1e9);
  if (probe_ != nullptr) {
    const double windows = std::ceil(std::max(0.0, deadline.sec()) / lookahead_.sec());
    probe_->on_run_start(sims_.size(), threads_, static_cast<std::uint64_t>(windows));
  }
  std::barrier<> bar{static_cast<std::ptrdiff_t>(threads_)};
  std::vector<std::thread> extra;
  extra.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w) {
    extra.emplace_back([this, w, deadline, &bar] { worker_loop(w, deadline, &bar); });
  }
  worker_loop(0, deadline, &bar);
  for (std::thread& th : extra) th.join();
}

std::uint64_t LpRuntime::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_processed();
  return total;
}

}  // namespace corelite::sim::par

#include "sim/parallel/thread_budget.h"

#include <algorithm>
#include <thread>

namespace corelite::sim::par {

ThreadBudget& ThreadBudget::instance() {
  static ThreadBudget budget;
  return budget;
}

std::size_t ThreadBudget::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadBudget::acquire(std::size_t want) {
  const std::size_t total = hardware_threads();
  std::size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    const std::size_t avail = cur < total ? total - cur : 0;
    const std::size_t grant = std::min(want, avail);
    if (grant == 0) return 0;
    if (used_.compare_exchange_weak(cur, cur + grant, std::memory_order_relaxed)) {
      return grant;
    }
  }
}

}  // namespace corelite::sim::par

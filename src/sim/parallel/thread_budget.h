// Process-wide thread accounting for nested parallelism.
//
// Two layers of the harness want threads: the sweep runner's ThreadPool
// (one worker per concurrent run) and the parallel engine's LP workers
// (several threads inside ONE run).  Composing them naively
// oversubscribes the machine — `--jobs 4` x `--lp 4` would spawn 16
// busy threads on a 4-way box and thrash every cache level.
//
// The budget is a single process-wide token counter over the hardware
// thread count.  Long-lived pools *reserve* their workers up front;
// each LpRuntime in auto mode (`--lp-threads 0`) *acquires* as many
// extra tokens as are left and runs the remaining LPs time-sliced on
// fewer threads.  Because LP-to-thread assignment never affects the
// event order (see lp_runtime.h), this clamp changes wall time only —
// digests are identical at any grant, so handing out "whatever is
// left" is always safe.
//
// An explicit `--lp-threads N` bypasses the budget: benchmarks and
// determinism tests need exact thread counts, oversubscribed or not.
#pragma once

#include <atomic>
#include <cstddef>

namespace corelite::sim::par {

class ThreadBudget {
 public:
  [[nodiscard]] static ThreadBudget& instance();

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static std::size_t hardware_threads();

  /// Permanently account `n` threads (a pool's workers).  May push the
  /// total past the hardware count — the budget then simply grants no
  /// extras to nested engines until release().
  void reserve(std::size_t n) { used_.fetch_add(n, std::memory_order_relaxed); }
  void release(std::size_t n) { used_.fetch_sub(n, std::memory_order_relaxed); }

  /// Grab up to `want` extra tokens; returns how many were granted
  /// (possibly 0).  The caller must release() the grant when done.
  [[nodiscard]] std::size_t acquire(std::size_t want);

  /// Tokens currently accounted (the main thread counts as 1).
  [[nodiscard]] std::size_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  ThreadBudget() = default;
  std::atomic<std::size_t> used_{1};  // the main thread
};

}  // namespace corelite::sim::par

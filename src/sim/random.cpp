#include "sim/random.h"

#include <algorithm>
#include <numeric>

namespace corelite::sim {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (k >= n) return all;
  // Partial Fisher-Yates: shuffle only the first k positions.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(static_cast<std::int64_t>(i),
                                                        static_cast<std::int64_t>(n - 1)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace corelite::sim

// Hot-path operation counters.
//
// The simulator's wall clock is dominated by a handful of per-packet
// operations: transcendental math (exp/pow), RNG draws, link observer
// dispatches and time-series appends.  Wall-clock numbers alone cannot
// tell a regression in one of these from machine noise, so the hot
// paths bump these counters unconditionally — the increments are plain
// thread-local adds, cheap enough to keep compiled into release builds
// — and `corelite_sim --profile` / bench/scale_flows surface them.
//
// Threading: each thread accumulates into its own thread-local block
// (no synchronization on the hot path).  A thread that finishes a unit
// of work publishes its block into a process-wide aggregate with
// flush_hotpath_counters() — a handful of relaxed atomic adds — which
// is what the sweep runner does after every run, so --profile output is
// complete at any --jobs level.  aggregated_hotpath_counters() returns
// the aggregate plus the calling thread's unflushed local block.
#pragma once

#include <cstdint>

namespace corelite::sim {

struct HotPathCounters {
  std::uint64_t exp_calls = 0;        ///< decay-cache exp() lookups
  std::uint64_t exp_cache_hits = 0;   ///< ... served from the cache
  std::uint64_t pow_calls = 0;        ///< decay-cache pow() lookups
  std::uint64_t pow_cache_hits = 0;   ///< ... served from the cache
  std::uint64_t rng_draws = 0;        ///< PRNG engine advances
  std::uint64_t observer_dispatches = 0;  ///< link observer callbacks invoked
  std::uint64_t series_appends = 0;   ///< stats::TimeSeries::add() samples
  std::uint64_t wheel_inserts = 0;    ///< events filed in a timing-wheel slot
  std::uint64_t wheel_cascades = 0;   ///< wheel entries re-filed a level down
  std::uint64_t heap_inserts = 0;     ///< events filed in the overflow heap
                                      ///  (every event when CORELITE_NO_WHEEL)
  std::uint64_t batch_drains = 0;     ///< link events that fused >=1 completion
  std::uint64_t batch_drained = 0;    ///< completions fused into batch events
  std::uint64_t lp_barriers = 0;      ///< barrier crossings in the parallel engine
  std::uint64_t cross_lp_events = 0;  ///< packets handed between LPs via mailboxes
  std::uint64_t mailbox_flushes = 0;  ///< non-empty mailbox drains at a barrier
  std::uint64_t lookahead_ns = 0;     ///< conservative window length (summed per run)

  /// Share of scheduled events the wheel tier absorbed.
  [[nodiscard]] double wheel_insert_rate() const {
    const std::uint64_t total = wheel_inserts + heap_inserts;
    return total == 0 ? 0.0
                      : static_cast<double>(wheel_inserts) / static_cast<double>(total);
  }
  /// Mean completions fused per batch-draining link event.
  [[nodiscard]] double mean_batch_len() const {
    return batch_drains == 0
               ? 0.0
               : static_cast<double>(batch_drained) / static_cast<double>(batch_drains);
  }
  [[nodiscard]] double exp_hit_rate() const {
    return exp_calls == 0 ? 0.0
                          : static_cast<double>(exp_cache_hits) / static_cast<double>(exp_calls);
  }
  [[nodiscard]] double pow_hit_rate() const {
    return pow_calls == 0 ? 0.0
                          : static_cast<double>(pow_cache_hits) / static_cast<double>(pow_calls);
  }
};

namespace detail {
/// Zero-initialized POD in the TLS image: access compiles to a couple
/// of fs-relative instructions, with no guard variable and no call —
/// the increments sit on the per-packet path.
inline constinit thread_local HotPathCounters t_hotpath_counters{};
}  // namespace detail

/// The calling thread's counter block.  Hot paths increment through
/// this; never cache the reference across threads.
[[nodiscard]] inline HotPathCounters& hotpath_counters() {
  return detail::t_hotpath_counters;
}

/// Add the calling thread's block into the process-wide aggregate and
/// zero the local block.  Called by the sweep runner after each run and
/// by run_paper_scenario() on completion; cheap (a dozen relaxed adds).
void flush_hotpath_counters();

/// Process-wide aggregate (all flushed blocks) plus the calling
/// thread's local block.  Worker threads must have flushed (the sweep
/// runner does) for their contribution to be visible.
[[nodiscard]] HotPathCounters aggregated_hotpath_counters();

/// Zero both the aggregate and the calling thread's local block.
/// Benchmarks call this between measured sections.
void reset_hotpath_counters();

}  // namespace corelite::sim

#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace corelite::sim {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{at, next_seq_++, std::move(cb), state});
  return EventHandle{std::move(state)};
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? SimTime::infinite() : heap_.top().at;
}

SimTime EventQueue::run_next() {
  drop_dead();
  assert(!heap_.empty() && "run_next on an empty event queue");
  // const_cast: priority_queue::top() is const, but we are about to pop the
  // entry, so moving the callback out is safe and avoids a copy.
  Entry& top = const_cast<Entry&>(heap_.top());
  const SimTime at = top.at;
  Callback cb = std::move(top.cb);
  top.state->fired = true;
  heap_.pop();
  cb();
  return at;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace corelite::sim

#include "sim/event_queue.h"

#include <utility>

namespace corelite::sim {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.state = std::make_shared<EventHandle::State>();
  EventHandle handle{s.state};
  push_entry(at.sec(), slot, /*cancellable=*/true);
  return handle;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) {
    const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    Slot& s = slots_[slot];
    if (s.state != nullptr) {
      // Outstanding handles must not report pending() forever.
      s.state->cancelled = true;
      s.state.reset();
    }
    s.cb.reset();
    free_slots_.push_back(slot);
  }
  heap_.clear();
}

}  // namespace corelite::sim

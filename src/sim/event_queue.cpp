#include "sim/event_queue.h"

#include <utility>

namespace corelite::sim {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.state = std::make_shared<EventHandle::State>();
  EventHandle handle{s.state};
  push_entry(at.sec(), slot, /*cancellable=*/true);
  return handle;
}

void EventQueue::clear() {
  const auto discard = [this](const Entry& e) {
    const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    Slot& s = slots_[slot];
    if (s.state != nullptr) {
      // Outstanding handles must not report pending() forever.
      s.state->cancelled = true;
      s.state.reset();
    }
    s.cb.reset();
    free_slots_.push_back(slot);
  };
  for (const Entry& e : heap_) discard(e);
  heap_.clear();
  // The consumed prefix of the buffer was already recycled on pop.
  for (std::size_t i = buf_pos_; i < buffer_.size(); ++i) discard(buffer_[i]);
  buffer_.clear();
  buf_pos_ = 0;
  std::vector<Entry> pending;
  wheel_.drain_all(pending);
  for (const Entry& e : pending) discard(e);
}

}  // namespace corelite::sim

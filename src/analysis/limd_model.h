// Closed-form predictions for Corelite's control loop (the "analysis"
// companion the paper appeals to in §2.2: "This leads to weighted rate
// fairness, as we show through both simulations and analysis").
//
// The model treats the converged system as a fluid limit of the
// discrete dynamics:
//
//   equilibrium rates     — the weighted max-min allocation (via the
//                           water-filling oracle in stats/fairness.h).
//   slow-start exit       — doubling from r0 once per T_ss until the
//                           rate first strictly exceeds ss_thresh, then
//                           halving: exit rate and exit time follow in
//                           closed form.
//   convergence time      — slow-start time plus the linear climb from
//                           the exit rate to the weighted share at
//                           alpha per epoch (when the share is above
//                           the exit rate; otherwise the multiplicative
//                           decrease envelope dominates and the bound
//                           is a few epochs).
//   oscillation amplitude — at equilibrium a flow alternates between
//                           unmarked epochs (+alpha) and marked epochs
//                           (-beta each marker).  With the steady
//                           marker rate lambda = b/(K1 w) and feedback
//                           spread F_n across the aggregate, each flow
//                           sees O(1) markers per congested epoch, so
//                           the peak-to-trough swing is approximately
//                           alpha + beta markers_per_marked_epoch,
//                           bounded below by alpha + beta.
//
// These are engineering estimates, not theorems; their value is that
// tests/analysis_test.cpp holds the simulator to them, so a regression
// that changes the control-loop behaviour trips an explainable check.
#pragma once

#include <cstddef>
#include <vector>

#include "qos/config.h"
#include "sim/units.h"

namespace corelite::analysis {

struct SlowStartPrediction {
  double exit_rate_pps = 0.0;  ///< rate right after the ss-thresh halving
  double exit_time_sec = 0.0;  ///< time of the halving, from flow start
  int doublings = 0;           ///< number of doublings performed
};

/// Doubling from cfg.initial_rate_pps once per cfg.ss_double_interval
/// until the rate strictly exceeds cfg.ss_thresh_pps (assumes no
/// congestion feedback arrives earlier).
[[nodiscard]] SlowStartPrediction predict_slow_start(const qos::RateAdaptConfig& cfg);

/// Time (seconds from flow start) for a flow to first reach
/// `share_pps` given slow start followed by the linear climb of
/// +alpha per edge epoch.  If the share is below the slow-start exit
/// rate, returns the slow-start exit time (the controller halves into
/// the vicinity and the remaining gap closes within a few epochs).
[[nodiscard]] double predict_time_to_share(const qos::RateAdaptConfig& cfg,
                                           sim::TimeDelta edge_epoch, double share_pps);

/// Lower bound on the equilibrium peak-to-trough oscillation of b_g
/// around the weighted share: one unmarked epoch (+alpha) plus one
/// marked epoch (-beta * markers).  `expected_markers_per_marked_epoch`
/// defaults to 1 (the common case once converged).
[[nodiscard]] double predict_oscillation_pps(const qos::RateAdaptConfig& cfg,
                                             double expected_markers_per_marked_epoch = 1.0);

/// Steady-state marker rate of a flow (pkt/s of markers): b/(K1*w) —
/// i.e. the normalized rate divided by K1 (paper §2.2 step 1).
[[nodiscard]] double marker_rate_pps(double rate_pps, double weight, double k1);

/// Aggregate marker load on a link carrying the given normalized rates
/// (sum of b_i/w_i), divided by K1.
[[nodiscard]] double link_marker_rate_pps(const std::vector<double>& rates_pps,
                                          const std::vector<double>& weights, double k1);

/// Equilibrium average queue: inverts the F_n formula.  At equilibrium
/// the feedback demanded per epoch equals the feedback needed to cancel
/// the aggregate probing pressure: n_flows * alpha per edge epoch,
/// scaled to the core epoch.  Solves F_n(q) = required for q by
/// bisection; returns q_thresh if no feedback is required.
[[nodiscard]] double predict_equilibrium_qavg(const qos::CoreliteConfig& cfg, double mu_pps,
                                              std::size_t n_flows);

}  // namespace corelite::analysis

#include "analysis/limd_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "qos/congestion_estimator.h"

namespace corelite::analysis {

SlowStartPrediction predict_slow_start(const qos::RateAdaptConfig& cfg) {
  SlowStartPrediction out;
  double rate = cfg.initial_rate_pps;
  int doublings = 0;
  while (rate * 2.0 <= cfg.ss_thresh_pps) {
    rate *= 2.0;
    ++doublings;
  }
  // The next doubling strictly exceeds ss-thresh and is halved back.
  rate *= 2.0;
  ++doublings;
  out.exit_rate_pps = std::max(cfg.min_rate_pps, rate / 2.0);
  out.exit_time_sec = static_cast<double>(doublings) * cfg.ss_double_interval.sec();
  out.doublings = doublings;
  return out;
}

double predict_time_to_share(const qos::RateAdaptConfig& cfg, sim::TimeDelta edge_epoch,
                             double share_pps) {
  const auto ss = predict_slow_start(cfg);
  if (share_pps <= ss.exit_rate_pps) return ss.exit_time_sec;
  const double climb_pps_per_sec = cfg.alpha_pps / edge_epoch.sec();
  return ss.exit_time_sec + (share_pps - ss.exit_rate_pps) / climb_pps_per_sec;
}

double predict_oscillation_pps(const qos::RateAdaptConfig& cfg,
                               double expected_markers_per_marked_epoch) {
  return cfg.alpha_pps + cfg.beta_pps * expected_markers_per_marked_epoch;
}

double marker_rate_pps(double rate_pps, double weight, double k1) {
  assert(weight > 0.0 && k1 > 0.0);
  return rate_pps / (k1 * weight);
}

double link_marker_rate_pps(const std::vector<double>& rates_pps,
                            const std::vector<double>& weights, double k1) {
  assert(rates_pps.size() == weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < rates_pps.size(); ++i) {
    total += marker_rate_pps(rates_pps[i], weights[i], k1);
  }
  return total;
}

double predict_equilibrium_qavg(const qos::CoreliteConfig& cfg, double mu_pps,
                                std::size_t n_flows) {
  // Probing pressure: every flow adds alpha per edge epoch; the link
  // must remove the same amount per edge epoch via feedback.  Feedback
  // is generated per core epoch, so per core epoch it must average
  //   required = n_flows * alpha * (core_epoch / edge_epoch) / beta  markers.
  const double required = static_cast<double>(n_flows) * cfg.adapt.alpha_pps *
                          (cfg.core_epoch.sec() / cfg.edge_epoch.sec()) / cfg.adapt.beta_pps;
  if (required <= 0.0) return cfg.q_thresh_pkts;

  qos::CongestionEstimator fn{cfg.q_thresh_pkts, cfg.k_cubic,
                              mu_pps * (cfg.legacy_per_epoch_mu ? cfg.core_epoch.sec() : 1.0),
                              cfg.adapt.beta_pps};
  double lo = cfg.q_thresh_pkts;
  double hi = cfg.q_thresh_pkts + 1.0;
  while (fn.markers_for(hi) < required && hi < 1e6) hi *= 2.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (fn.markers_for(mid) < required) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace corelite::analysis

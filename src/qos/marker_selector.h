// Weighted-fair marker feedback selection (paper §2.2 step 2 and §3.2).
//
// When a core link detects incipient congestion it must send F_n marker
// feedbacks, distributed across flows in proportion to their normalized
// rates — without knowing the flows.  Two interchangeable mechanisms:
//
//   MarkerCacheSelector  — keep a circular cache of recently seen
//     markers; on congestion, sample F_n of them uniformly.  Because a
//     flow's markers appear in the cache in proportion to its normalized
//     rate, uniform sampling is weighted-fair in expectation (§2.2).
//
//   StatelessSelector — no cache at all (§3.2).  Keep two scalars:
//     r_av, the running average of marker labels, and w_av, the running
//     average of markers seen per epoch.  During a congested epoch each
//     arriving marker is selected with probability p_w = F_n / w_av, but
//     only markers whose label is >= r_av are actually echoed; selecting
//     a below-average marker increments a deficit that is repaid by
//     echoing a future at-or-above-average marker.  This selectively
//     throttles only flows exceeding their weighted fair share.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"

namespace corelite::qos {

class MarkerSelector {
 public:
  /// Invoked for each marker chosen as feedback.
  using FeedbackFn = std::function<void(const net::MarkerInfo&)>;

  virtual ~MarkerSelector() = default;

  /// A marker just traversed the link.
  virtual void on_marker(const net::MarkerInfo& m, const FeedbackFn& feedback) = 0;

  /// The congestion epoch ended; `fn_markers` is the (possibly
  /// fractional) number of feedbacks the estimator requests for the next
  /// epoch (0 when not congested).
  virtual void on_epoch(double fn_markers, const FeedbackFn& feedback) = 0;

  /// Total feedbacks generated so far (diagnostics).
  [[nodiscard]] virtual std::uint64_t feedback_count() const = 0;
};

/// §2.2 circular-cache scheme.
///
/// Feedback per epoch is capped at the number of markers that actually
/// traversed the link during that epoch: the cache is a *sampling*
/// device, not an amplifier, and echoing more feedbacks than markers
/// arrived would throttle the aggregate far below capacity whenever the
/// F_n formula spikes during a transient.
class MarkerCacheSelector final : public MarkerSelector {
 public:
  MarkerCacheSelector(std::size_t cache_size, sim::Rng& rng);

  void on_marker(const net::MarkerInfo& m, const FeedbackFn& feedback) override;
  void on_epoch(double fn_markers, const FeedbackFn& feedback) override;
  [[nodiscard]] std::uint64_t feedback_count() const override { return sent_; }

  [[nodiscard]] std::size_t cached() const { return cache_.size(); }

 private:
  std::size_t capacity_;
  sim::Rng* rng_;
  std::vector<net::MarkerInfo> cache_;  // ring buffer
  std::size_t next_slot_ = 0;
  std::uint64_t markers_this_epoch_ = 0;
  std::uint64_t sent_ = 0;
};

/// §3.2 flow-stateless scheme (default in Corelite).
///
/// r_av is maintained as an EWMA over *per-epoch* label means rather
/// than per-marker updates: per-marker gains tie the averaging window to
/// the marker arrival rate, so the same gain that is stable at one load
/// lags fatally at another.  Eligibility uses a small tolerance
/// (label >= eligibility_factor * r_av): flows at the average — exactly
/// the situation at a converged weighted-fair equilibrium — must remain
/// throttleable, or congestion feedback stalls while the queue fills.
class StatelessSelector final : public MarkerSelector {
 public:
  /// `rav_gain`: per-epoch EWMA gain for r_av (e.g. 0.1 ~ 1 s window at
  /// 100 ms epochs).  `wav_gain`: per-epoch EWMA gain for w_av.
  /// `eligibility_factor`: markers labelled >= factor * r_av are
  /// eligible for feedback (1.0 = the paper's strict reading).
  StatelessSelector(double rav_gain, double wav_gain, sim::Rng& rng,
                    double eligibility_factor = 0.9);

  void on_marker(const net::MarkerInfo& m, const FeedbackFn& feedback) override;
  void on_epoch(double fn_markers, const FeedbackFn& feedback) override;
  [[nodiscard]] std::uint64_t feedback_count() const override { return sent_; }

  [[nodiscard]] double running_avg_rate() const { return rav_; }
  [[nodiscard]] double running_avg_markers() const { return wav_; }
  [[nodiscard]] double selection_probability() const { return pw_; }
  [[nodiscard]] int deficit() const { return deficit_; }

 private:
  [[nodiscard]] bool eligible(double label) const {
    return rav_init_ && label >= eligibility_factor_ * rav_;
  }

  double rav_gain_;
  double wav_gain_;
  sim::Rng* rng_;
  double eligibility_factor_;

  double rav_ = 0.0;   ///< running average of marker labels (normalized rates)
  bool rav_init_ = false;
  double wav_ = 0.0;   ///< running average of markers per epoch
  bool wav_init_ = false;
  double label_sum_this_epoch_ = 0.0;
  std::uint64_t markers_this_epoch_ = 0;
  double pw_ = 0.0;    ///< per-marker selection probability for this epoch
  int deficit_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace corelite::qos

// Edge rate-adaptation controllers (paper §2.2 step 3, §4, §4.4).
//
// The paper's evaluation uses a weighted LIMD scheme (linear increase /
// marker-proportional decrease) and notes that "simulations using
// different adaptation schemes at the edge router ... are part of
// ongoing work".  The adaptation policy is therefore pluggable:
//
//   LimdRateController — the paper's scheme: +alpha pkt/s per unmarked
//     epoch, -beta pkt/s per marker.  Because markers arrive in
//     proportion to the normalized rate, the decrease is effectively
//     multiplicative => converges to weighted max-min (Chiu & Jain).
//
//   AimdRateController — classic AIMD: +alpha per unmarked epoch,
//     rate *= (1 - md_factor)^m on m markers.  Also converges; decrease
//     is multiplicative by construction rather than via marker counts.
//
//   MimdRateController — multiplicative increase & decrease.  Does NOT
//     converge to fairness (Chiu & Jain); provided as the negative
//     control for bench/ablation_adaptation.
//
// All controllers share the slow-start behaviour of the paper's source
// agents: double once per second until the first congestion
// notification or until the rate strictly exceeds ss-thresh, then halve
// and enter the closed-loop phase.
#pragma once

#include <memory>

#include "qos/config.h"
#include "sim/units.h"

namespace corelite::qos {

class RateController {
 public:
  virtual ~RateController() = default;

  /// Restart from scratch (flow [re]admission): initial rate, slow start.
  virtual void reset(sim::SimTime now) = 0;

  /// Apply one adaptation epoch with `feedback_count` markers/losses.
  virtual void on_epoch(int feedback_count, sim::SimTime now) = 0;

  [[nodiscard]] virtual double rate_pps() const = 0;
  [[nodiscard]] virtual bool in_slow_start() const = 0;
  [[nodiscard]] virtual double floor_pps() const = 0;
};

/// Shared slow-start + floor plumbing for the concrete controllers.
class SlowStartBase : public RateController {
 public:
  SlowStartBase(const RateAdaptConfig& cfg, double min_rate_contract_pps);

  void reset(sim::SimTime now) final;
  void on_epoch(int feedback_count, sim::SimTime now) final;

  [[nodiscard]] double rate_pps() const final { return rate_; }
  [[nodiscard]] bool in_slow_start() const final { return slow_start_; }
  [[nodiscard]] double floor_pps() const final { return floor_; }

 protected:
  /// Closed-loop step, called once slow start has ended.  Implementations
  /// mutate `rate` and must respect `floor`.
  virtual void adapt(double& rate, int feedback_count, double floor) = 0;

  RateAdaptConfig cfg_;

 private:
  double floor_;
  double rate_;
  bool slow_start_ = true;
  sim::SimTime last_double_ = sim::SimTime::zero();
};

/// The paper's controller: linear increase, beta-per-marker decrease.
class LimdRateController final : public SlowStartBase {
 public:
  explicit LimdRateController(const RateAdaptConfig& cfg, double min_rate_contract_pps = 0.0)
      : SlowStartBase(cfg, min_rate_contract_pps) {}

 protected:
  void adapt(double& rate, int feedback_count, double floor) override;
};

/// Classic AIMD with per-marker multiplicative decrease factor.
class AimdRateController final : public SlowStartBase {
 public:
  explicit AimdRateController(const RateAdaptConfig& cfg, double min_rate_contract_pps = 0.0)
      : SlowStartBase(cfg, min_rate_contract_pps) {}

 protected:
  void adapt(double& rate, int feedback_count, double floor) override;
};

/// MIMD negative control: multiplicative increase and decrease.
class MimdRateController final : public SlowStartBase {
 public:
  explicit MimdRateController(const RateAdaptConfig& cfg, double min_rate_contract_pps = 0.0)
      : SlowStartBase(cfg, min_rate_contract_pps) {}

 protected:
  void adapt(double& rate, int feedback_count, double floor) override;
};

/// Build the controller selected by cfg.kind.
[[nodiscard]] std::unique_ptr<RateController> make_rate_controller(
    const RateAdaptConfig& cfg, double min_rate_contract_pps = 0.0);

}  // namespace corelite::qos

#include "qos/core_router.h"

#include <utility>

#include "telemetry/metrics.h"

namespace corelite::qos {

namespace {

const telemetry::Counter& markers_seen() {
  static const telemetry::Counter c{"qos.markers_seen"};
  return c;
}
const telemetry::Counter& feedback_counter() {
  static const telemetry::Counter c{"qos.feedback_sent"};
  return c;
}

}  // namespace

struct CoreliteCoreRouter::LinkState final : net::LinkObserver {
  CoreliteCoreRouter* owner = nullptr;
  net::Link* link = nullptr;
  std::unique_ptr<CongestionDetector> detector;
  std::unique_ptr<MarkerSelector> selector;
  /// Built once: constructing a std::function per marker put ~92k
  /// manager-op pairs on the per-packet path of a 60 s 80-flow run.
  MarkerSelector::FeedbackFn feedback_fn;
  stats::TimeSeries q_avg_series;
  stats::TimeSeries fn_series;
  stats::TimeSeries feedback_series;
  std::uint64_t feedback_at_last_epoch = 0;
  std::uint64_t congested_epochs = 0;

  LinkState(CoreliteCoreRouter* o, net::Link* l, const CoreliteConfig& cfg, sim::Rng& rng)
      : owner{o},
        link{l},
        detector{make_congestion_detector(cfg, l->rate().pps(cfg.packet_size))},
        feedback_fn{[o](const net::MarkerInfo& m) { o->send_feedback(m); }} {
    if (cfg.selector == SelectorKind::MarkerCache) {
      selector = std::make_unique<MarkerCacheSelector>(cfg.marker_cache_size, rng);
    } else {
      selector = std::make_unique<StatelessSelector>(cfg.rav_gain, cfg.wav_gain, rng,
                                                     cfg.eligibility_factor);
    }
  }

  void on_enqueue(const net::Packet& p, sim::SimTime /*now*/) override {
    if (p.kind != net::PacketKind::Marker) return;
    markers_seen().add();
    // The router copies the marker without any per-flow processing; the
    // selector decides (statistically) whether it becomes feedback.
    selector->on_marker(p.marker, feedback_fn);
  }

  void on_queue_length(std::size_t data_packets, sim::SimTime now) override {
    detector->on_queue_length(data_packets, now);
  }

  void on_link_destroyed(net::Link& /*l*/) override { link = nullptr; }
};

CoreliteCoreRouter::CoreliteCoreRouter(net::Network& network, net::NodeId node,
                                       const CoreliteConfig& config)
    : net_{network}, node_{node}, cfg_{config} {
  for (net::Link* link : net_.node(node_).out_links()) {
    links_.push_back(std::make_unique<LinkState>(this, link, cfg_, net_.local_sim(node_).rng()));
    link->add_observer(links_.back().get(),
                       net::Link::kObserveEnqueue | net::Link::kObserveQueueLength);
  }
  const auto phase =
      sim::TimeDelta::seconds(net_.local_sim(node_).rng().uniform(0.0, cfg_.core_epoch.sec()));
  epoch_timer_ = net_.local_sim(node_).every(cfg_.core_epoch, [this] { on_epoch(); }, phase);
}

CoreliteCoreRouter::~CoreliteCoreRouter() {
  epoch_timer_.cancel();
  for (auto& ls : links_) {
    if (ls->link != nullptr) ls->link->remove_observer(ls.get());
  }
}

void CoreliteCoreRouter::send_feedback(const net::MarkerInfo& m) {
  net::Packet fb;
  fb.uid = net_.next_packet_uid(node_);
  fb.kind = net::PacketKind::Feedback;
  fb.flow = m.flow;
  fb.src = node_;
  fb.dst = m.edge_router;  // markers carry their generating edge as source
  fb.size = sim::DataSize::zero();
  fb.marker = m;
  fb.feedback_origin = node_;
  fb.created = net_.local_sim(node_).now();
  ++feedback_sent_;
  feedback_counter().add();
  net_.inject(node_, std::move(fb));
}

void CoreliteCoreRouter::on_epoch() {
  const sim::SimTime now = net_.local_sim(node_).now();
  for (auto& ls : links_) {
    const double fn = ls->detector->end_epoch(now);
    ls->q_avg_series.add(now.sec(), ls->detector->last_q_avg());
    ls->fn_series.add(now.sec(), fn);
    if (fn > 0.0) ++ls->congested_epochs;
    ls->selector->on_epoch(fn, ls->feedback_fn);
    const std::uint64_t sent = ls->selector->feedback_count();
    ls->feedback_series.add(now.sec(), static_cast<double>(sent - ls->feedback_at_last_epoch));
    ls->feedback_at_last_epoch = sent;
  }
}

std::vector<CoreliteCoreRouter::LinkDiagnostics> CoreliteCoreRouter::diagnostics() const {
  std::vector<LinkDiagnostics> out;
  out.reserve(links_.size());
  for (const auto& ls : links_) {
    out.push_back({ls->link->to(), ls->detector->last_q_avg(), ls->selector->feedback_count(),
                   ls->congested_epochs, &ls->q_avg_series, &ls->fn_series,
                   &ls->feedback_series});
  }
  return out;
}

}  // namespace corelite::qos

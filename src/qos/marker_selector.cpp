#include "qos/marker_selector.h"

#include <algorithm>
#include <cmath>

namespace corelite::qos {

// ---------------------------------------------------------------------------
// MarkerCacheSelector

MarkerCacheSelector::MarkerCacheSelector(std::size_t cache_size, sim::Rng& rng)
    : capacity_{cache_size}, rng_{&rng} {
  cache_.reserve(capacity_);
}

void MarkerCacheSelector::on_marker(const net::MarkerInfo& m, const FeedbackFn& /*feedback*/) {
  ++markers_this_epoch_;
  if (cache_.size() < capacity_) {
    cache_.push_back(m);
  } else {
    cache_[next_slot_] = m;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

void MarkerCacheSelector::on_epoch(double fn_markers, const FeedbackFn& feedback) {
  const double arrived = static_cast<double>(markers_this_epoch_);
  markers_this_epoch_ = 0;
  if (fn_markers <= 0.0 || cache_.empty()) return;
  // Cap at this epoch's marker arrivals (see class comment), then round
  // probabilistically so the long-run expected count matches.
  const double want = std::min(fn_markers, arrived);
  auto n = static_cast<std::size_t>(want);
  if (rng_->bernoulli(want - std::floor(want))) ++n;
  if (n == 0) return;
  for (std::size_t idx : rng_->sample_indices(cache_.size(), n)) {
    feedback(cache_[idx]);
    ++sent_;
  }
}

// ---------------------------------------------------------------------------
// StatelessSelector

StatelessSelector::StatelessSelector(double rav_gain, double wav_gain, sim::Rng& rng,
                                     double eligibility_factor)
    : rav_gain_{rav_gain},
      wav_gain_{wav_gain},
      rng_{&rng},
      eligibility_factor_{eligibility_factor} {}

void StatelessSelector::on_marker(const net::MarkerInfo& m, const FeedbackFn& feedback) {
  // Accumulate this epoch's label statistics.  Because faster flows
  // contribute more markers, the marker-weighted mean overestimates the
  // per-flow mean — exactly the bias the paper exploits: only flows at
  // or above r_av (the over-users) are ever throttled.
  label_sum_this_epoch_ += m.normalized_rate;
  ++markers_this_epoch_;

  if (pw_ <= 0.0) return;  // link not congested this epoch

  const bool selected = rng_->bernoulli(std::min(pw_, 1.0));
  const bool ok = eligible(m.normalized_rate);
  if (selected && ok) {
    feedback(m);
    ++sent_;
  } else if (selected && !ok) {
    // Swap for a future at-or-above-average marker.
    ++deficit_;
  } else if (!selected && deficit_ > 0 && ok) {
    feedback(m);
    ++sent_;
    --deficit_;
  }
}

void StatelessSelector::on_epoch(double fn_markers, const FeedbackFn& /*feedback*/) {
  const auto seen = static_cast<double>(markers_this_epoch_);
  if (seen > 0.0) {
    const double epoch_mean = label_sum_this_epoch_ / seen;
    if (!rav_init_) {
      rav_ = epoch_mean;
      rav_init_ = true;
    } else {
      rav_ = (1.0 - rav_gain_) * rav_ + rav_gain_ * epoch_mean;
    }
  }
  if (!wav_init_) {
    wav_ = seen;
    wav_init_ = seen > 0.0;
  } else {
    wav_ = (1.0 - wav_gain_) * wav_ + wav_gain_ * seen;
  }
  label_sum_this_epoch_ = 0.0;
  markers_this_epoch_ = 0;
  deficit_ = 0;  // deficits do not persist across epochs (§3.2)
  pw_ = (fn_markers > 0.0 && wav_ > 0.0) ? fn_markers / wav_ : 0.0;
}

}  // namespace corelite::qos

// Administrative rate classes (paper §2.1).
//
// "While Corelite does not place any bounds on the number or range of
// the distinct rate weights that can be supported, we expect that a
// network administrator will typically provide a small number of rate
// classes for a network, and associate a rate weight with each class.
// Each flow will then select a rate class."
//
// The registry is that administrative surface: named classes mapping to
// rate weights (and optional minimum-rate contracts), plus a helper
// that stamps a FlowSpec from a class name.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/flow.h"

namespace corelite::qos {

class RateClassRegistry {
 public:
  struct RateClass {
    std::string name;
    double weight = 1.0;
    double min_rate_pps = 0.0;  ///< optional rate contract for the class
  };

  /// Define (or redefine) a class.  Weight must be positive.
  void define(std::string name, double weight, double min_rate_pps = 0.0);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::optional<RateClass> find(std::string_view name) const;
  [[nodiscard]] std::vector<RateClass> list() const;
  [[nodiscard]] std::size_t size() const { return classes_.size(); }

  /// Build a FlowSpec for a flow that "selects" the named class.
  /// Returns nullopt when the class is unknown.
  [[nodiscard]] std::optional<net::FlowSpec> make_flow(net::FlowId id, net::NodeId ingress,
                                                       net::NodeId egress,
                                                       std::string_view class_name) const;

  /// A conventional three-tier default: bronze (w=1), silver (w=2),
  /// gold (w=4).
  [[nodiscard]] static RateClassRegistry standard_tiers();

 private:
  std::map<std::string, RateClass, std::less<>> classes_;
};

}  // namespace corelite::qos

// Corelite edge-router behaviour (paper §2.2 steps 1 and 3).
//
// For every flow admitted at this ingress the edge router:
//   - shapes the flow to its allowed rate b_g(f) (infinite-backlog
//     sources paced at b_g, as in the paper's experiments),
//   - injects a marker after every N_w = K1 * w(f) data packets, labelled
//     with the flow's normalized rate b_g/w (markers are zero-size:
//     "physically piggybacked"),
//   - accumulates marker feedback per originating core router, and once
//     per epoch adapts b_g with the weighted LIMD controller, reacting
//     to the MAX of the per-core-router marker counts (throttle for the
//     bottleneck, not the sum of all bottlenecks).
//
// The edge router also acts as an egress sink: data packets addressed to
// its node are counted as delivered (for flows terminating here).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "net/flow.h"
#include "net/network.h"
#include "net/packet.h"
#include "qos/config.h"
#include "qos/rate_controller.h"
#include "qos/token_bucket.h"
#include "sim/fluid/warp.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {

class CoreliteEdgeRouter {
 public:
  /// `tracker` (optional) receives rate samples, send/feedback counters.
  CoreliteEdgeRouter(net::Network& network, net::NodeId node, const CoreliteConfig& config,
                     stats::FlowTracker* tracker = nullptr);

  CoreliteEdgeRouter(const CoreliteEdgeRouter&) = delete;
  CoreliteEdgeRouter& operator=(const CoreliteEdgeRouter&) = delete;
  ~CoreliteEdgeRouter();

  /// Admit a locally sourced (infinite-backlog, paced) flow whose
  /// ingress is this node.  Activity windows in the spec schedule its
  /// start/stop/restart automatically.
  void add_flow(const net::FlowSpec& spec);

  /// Admit a *transit* flow: packets are generated elsewhere (e.g. a
  /// TCP host behind this edge) and arrive at this node for forwarding.
  /// The edge diverts them into a per-flow shaping queue drained at
  /// b_g(f); overflow is dropped at the edge.  Marker injection and
  /// rate adaptation work exactly as for sourced flows.
  void add_transit_flow(const net::FlowSpec& spec);

  [[nodiscard]] std::uint64_t transit_drops() const { return transit_drops_; }

  /// Fluid fast-forward: route activity-window transitions through the
  /// experiment-time warp registry instead of fixed engine timestamps,
  /// so a fast-forward jump pulls them earlier rather than stranding
  /// them in the compressed-out span.  Must be set before any add_flow;
  /// nullptr (the default) keeps the legacy engine-time scheduling
  /// bit for bit.
  void set_fluid_warp(sim::fluid::TimeWarp* warp) { warp_ = warp; }

  /// Current allowed transmission rate b_g(f) in pkt/s (0 if unknown/idle).
  [[nodiscard]] double current_rate_pps(net::FlowId flow) const;

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t markers_injected() const { return markers_injected_; }
  [[nodiscard]] std::uint64_t feedback_received() const { return feedback_received_; }
  [[nodiscard]] std::uint64_t data_delivered_here() const { return data_delivered_; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct FlowState {
    net::FlowSpec spec;
    std::unique_ptr<RateController> ctrl;
    bool active = false;
    /// Position in active_ while active (kNoSlot otherwise) — O(1)
    /// swap-removal when the flow stops.
    std::size_t active_slot = kNoSlot;
    /// Out-of-profile packet credit: each data packet contributes the
    /// flow's out-of-profile fraction; a marker is injected when the
    /// credit reaches N_w.  For flows without a min-rate contract every
    /// packet is out-of-profile and this reduces to "a marker after
    /// every N_w data packets" (paper §2.2).
    double marker_credit = 0.0;
    std::uint32_t marker_spacing = 1;  ///< N_w = K1 * w
    /// Marker-feedback counts keyed by originating core router.  A flow
    /// crosses a handful of cores, so a flat pair vector beats a hash
    /// map on both memory (no buckets per flow) and epoch-scan cost.
    std::vector<std::pair<net::NodeId, int>> feedback_per_core;
    /// Emission/drain events are fire-and-forget (no per-event control
    /// block); stopping the flow bumps this generation so in-flight
    /// events of the old chain turn into no-ops.
    std::uint32_t emit_gen = 0;
    sim::SimTime pacing_anchor;  ///< OnOff burst-cycle phase reference

    /// Transit mode: shaping queue of diverted packets, drained through
    /// a token bucket (burst tolerance without changing the mean rate).
    bool transit = false;
    bool draining = false;  ///< transit drain loop currently scheduled
    std::deque<net::Packet> shaping_queue;
    TokenBucket bucket{1.0, 1.0};

    FlowState(const net::FlowSpec& s, const RateAdaptConfig& rc)
        : spec{s}, ctrl{make_rate_controller(rc, s.min_rate_pps)} {}

    /// Rate above the minimum contract — the only part that competes
    /// for weighted fairness and the only part that is marked.
    [[nodiscard]] double out_of_profile_pps() const {
      return std::max(0.0, ctrl->rate_pps() - spec.min_rate_pps);
    }
  };

  /// Dense id-indexed lookup; nullptr for unknown flows.
  [[nodiscard]] FlowState* lookup(net::FlowId id) const {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }
  void register_flow(std::unique_ptr<FlowState> fs);

  void schedule_window(FlowState& fs, std::size_t window);
  void start_flow(FlowState& fs);
  void stop_flow(FlowState& fs);
  void emit_packet(FlowState& fs);
  void drain_transit(FlowState& fs);
  bool intercept_transit(net::Packet& p);
  void count_marker_credit_and_maybe_mark(FlowState& fs);
  void inject_marker(FlowState& fs);
  [[nodiscard]] sim::TimeDelta next_emission_gap(FlowState& fs, double rate_pps);
  void on_epoch();
  void handle_local(net::Packet&& p);

  net::Network& net_;
  net::NodeId node_;
  CoreliteConfig cfg_;
  stats::FlowTracker* tracker_;
  sim::fluid::TimeWarp* warp_ = nullptr;
  /// Owner (insertion order, address-stable via unique_ptr: emission
  /// events capture FlowState&), dense id index, and the set of
  /// currently active flows — per-epoch bookkeeping is O(active), and
  /// per-packet lookups are an array index instead of a hash probe.
  std::vector<std::unique_ptr<FlowState>> flows_;
  std::vector<FlowState*> by_id_;
  std::vector<FlowState*> active_;
  sim::PeriodicHandle epoch_timer_;
  std::uint64_t markers_injected_ = 0;
  std::uint64_t feedback_received_ = 0;
  std::uint64_t data_delivered_ = 0;
  std::uint64_t transit_drops_ = 0;
  bool transit_hook_installed_ = false;
};

}  // namespace corelite::qos

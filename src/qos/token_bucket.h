// Token-bucket shaper (the standard traffic-shaping primitive).
//
// The paper's edge "shapes the flow's traffic according to its current
// b_g(f)"; for sourced flows strict pacing is exact, but for transit
// traffic (TCP behind the edge) strict per-packet spacing adds
// serialization delay to every burst.  A token bucket drains queued
// bursts back-to-back up to `burst` packets while enforcing the same
// long-run rate.
#pragma once

#include <algorithm>
#include <cassert>

#include "sim/units.h"

namespace corelite::qos {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second, capped at `burst`.
  /// The bucket starts full.
  TokenBucket(double rate_per_sec, double burst, sim::SimTime now = sim::SimTime::zero())
      : rate_{rate_per_sec}, burst_{burst}, tokens_{burst}, last_{now} {
    assert(rate_per_sec > 0.0 && burst >= 1.0);
  }

  /// Update the fill rate (refills at the old rate first).
  void set_rate(double rate_per_sec, sim::SimTime now) {
    refill(now);
    rate_ = std::max(rate_per_sec, 1e-9);
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

  /// Tokens available at `now`.
  [[nodiscard]] double tokens(sim::SimTime now) const {
    return std::min(burst_, tokens_ + rate_ * (now - last_).sec());
  }

  /// Consume `n` tokens if available.
  bool try_consume(double n, sim::SimTime now) {
    refill(now);
    if (tokens_ + 1e-12 < n) return false;
    tokens_ -= n;
    return true;
  }

  /// Time until `n` tokens will be available (zero if already).
  /// When tokens are short, the result is floored at 1 microsecond:
  /// an unfloored deficit of ~1e-12 tokens yields a wait below the
  /// double-precision ulp of mid-simulation timestamps, so the waiter's
  /// rescheduled event lands on the SAME instant and livelocks.
  [[nodiscard]] sim::TimeDelta time_until(double n, sim::SimTime now) const {
    const double have = tokens(now);
    if (have >= n) return sim::TimeDelta::zero();
    return sim::TimeDelta::seconds(std::max((n - have) / rate_, 1e-6));
  }

  /// Drain the bucket to empty (used on flow restart so an idle period
  /// does not grant a full-burst head start beyond the configured one).
  void clear(sim::SimTime now) {
    last_ = now;
    tokens_ = 0.0;
  }

 private:
  void refill(sim::SimTime now) {
    tokens_ = tokens(now);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_;
};

}  // namespace corelite::qos

// Corelite core-router behaviour (paper §2.2 step 2, §3).
//
// A core router keeps NO per-flow state.  Per outgoing link it runs:
//   - a CongestionEstimator watching the data queue length, and
//   - a MarkerSelector that turns passing markers into weighted-fair
//     feedback when the estimator reports incipient congestion.
//
// Selected markers are echoed to the edge router that generated them
// (the marker's source address), stamped with this router's id so the
// edge can take the max over core routers.  The router never inspects
// data packets, never drops, and its forwarding behaviour is untouched —
// it attaches to links purely as an observer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/network.h"
#include "qos/config.h"
#include "qos/congestion_estimator.h"
#include "qos/marker_selector.h"
#include "stats/time_series.h"

namespace corelite::qos {

class CoreliteCoreRouter {
 public:
  /// Diagnostics for one monitored link.
  struct LinkDiagnostics {
    net::NodeId link_to = net::kInvalidNode;
    double last_q_avg = 0.0;
    std::uint64_t feedback_sent = 0;
    std::uint64_t congested_epochs = 0;
    const stats::TimeSeries* q_avg_series = nullptr;
    const stats::TimeSeries* fn_series = nullptr;        ///< F_n per epoch
    const stats::TimeSeries* feedback_series = nullptr;  ///< echoes per epoch
  };

  /// Attaches to every outgoing link of `node` that exists at
  /// construction time.  Call after the topology is fully built.
  CoreliteCoreRouter(net::Network& network, net::NodeId node, const CoreliteConfig& config);

  CoreliteCoreRouter(const CoreliteCoreRouter&) = delete;
  CoreliteCoreRouter& operator=(const CoreliteCoreRouter&) = delete;
  ~CoreliteCoreRouter();

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t total_feedback_sent() const { return feedback_sent_; }
  [[nodiscard]] std::vector<LinkDiagnostics> diagnostics() const;

 private:
  struct LinkState;

  void send_feedback(const net::MarkerInfo& m);
  void on_epoch();

  net::Network& net_;
  net::NodeId node_;
  CoreliteConfig cfg_;
  std::vector<std::unique_ptr<LinkState>> links_;
  sim::PeriodicHandle epoch_timer_;
  std::uint64_t feedback_sent_ = 0;
};

}  // namespace corelite::qos

#include "qos/rate_classes.h"

#include <cassert>

namespace corelite::qos {

void RateClassRegistry::define(std::string name, double weight, double min_rate_pps) {
  assert(weight > 0.0);
  assert(min_rate_pps >= 0.0);
  RateClass rc;
  rc.name = name;
  rc.weight = weight;
  rc.min_rate_pps = min_rate_pps;
  classes_[std::move(name)] = std::move(rc);
}

bool RateClassRegistry::has(std::string_view name) const {
  return classes_.find(name) != classes_.end();
}

std::optional<RateClassRegistry::RateClass> RateClassRegistry::find(
    std::string_view name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) return std::nullopt;
  return it->second;
}

std::vector<RateClassRegistry::RateClass> RateClassRegistry::list() const {
  std::vector<RateClass> out;
  out.reserve(classes_.size());
  for (const auto& [name, rc] : classes_) out.push_back(rc);
  return out;
}

std::optional<net::FlowSpec> RateClassRegistry::make_flow(net::FlowId id, net::NodeId ingress,
                                                          net::NodeId egress,
                                                          std::string_view class_name) const {
  const auto rc = find(class_name);
  if (!rc.has_value()) return std::nullopt;
  net::FlowSpec fs;
  fs.id = id;
  fs.ingress = ingress;
  fs.egress = egress;
  fs.weight = rc->weight;
  fs.min_rate_pps = rc->min_rate_pps;
  return fs;
}

RateClassRegistry RateClassRegistry::standard_tiers() {
  RateClassRegistry reg;
  reg.define("bronze", 1.0);
  reg.define("silver", 2.0);
  reg.define("gold", 4.0);
  return reg;
}

}  // namespace corelite::qos

// Incipient congestion detection at a core-router link (paper §3.1).
//
// The estimator integrates the data queue length over each congestion
// epoch to get the average queue size q_avg.  If q_avg exceeds the
// threshold q_thresh, the link is incipiently congested, and the number
// of feedback markers to send is
//
//   F_n = mu * ( q_avg/(1+q_avg) - q_thresh/(1+q_thresh) ) / beta
//         + k * (q_avg - q_thresh)^3
//
// Derivation: for an M/M/1 queue, q_avg = rho/(1-rho), so
// rho = q_avg/(1+q_avg) is the arrival rate as a fraction of the
// service rate mu.  mu * (rho(q_avg) - rho(q_thresh)) is therefore the
// *rate excess* (in packets/second with mu in packets/second) by which
// the aggregate input must be throttled to bring the mean queue back to
// q_thresh.  Each echoed marker throttles one flow by at least beta
// (pkt/s), hence the division.  The cubic second term self-corrects
// when the Poisson assumptions fail and queues keep building (§3.1's
// discussion of k): without it, dF_n/dq_avg shrinks as 1/(1+q_avg)^2
// and sustained overload would outrun the feedback.
//
// (The paper's text states mu "in packets per congestion epoch", which
// makes the first term an epoch-sized packet count; read together with
// "each marker causes a rate throttling by at least beta" the
// dimensionally consistent form is the one above, and it reproduces the
// paper's observed behaviour — q_avg pinned just above q_thresh, no
// packet loss — whereas the per-epoch reading under-throttles by the
// epochs-per-second factor and oscillates into tail drops.)
#pragma once

#include <cstddef>
#include <memory>

#include "qos/config.h"
#include "sim/units.h"

namespace corelite::qos {

/// Pluggable incipient-congestion detection (paper §3.1: "the congestion
/// estimation module can be replaced with no impact on the rest of the
/// Corelite mechanisms").  A detector consumes the instantaneous data
/// queue length and, once per congestion epoch, reports how many marker
/// feedbacks the link should emit.
class CongestionDetector {
 public:
  virtual ~CongestionDetector() = default;

  /// Feed every change of the instantaneous data queue length.
  virtual void on_queue_length(std::size_t data_packets, sim::SimTime now) = 0;

  /// Close the current epoch: returns F_n (0 when not congested).
  [[nodiscard]] virtual double end_epoch(sim::SimTime now) = 0;

  /// The detector's congestion measure at the last end_epoch().
  [[nodiscard]] virtual double last_q_avg() const = 0;
};

class CongestionEstimator final : public CongestionDetector {
 public:
  /// `mu_pps`: link capacity in packets/second (e.g. 500 for 4 Mbps at
  /// 1 KB packets).  `beta_pps`: rate decrement one marker causes at
  /// the edge (pkt/s).
  CongestionEstimator(double q_thresh_pkts, double k_cubic, double mu_pps, double beta_pps);

  /// Feed every change of the instantaneous data queue length.
  void on_queue_length(std::size_t data_packets, sim::SimTime now) override;

  /// Close the current epoch: returns F_n (0 when not congested) and
  /// starts integrating the next epoch.
  [[nodiscard]] double end_epoch(sim::SimTime now) override;

  /// Average queue length computed at the last end_epoch().
  [[nodiscard]] double last_q_avg() const override { return last_q_avg_; }
  [[nodiscard]] bool last_congested() const { return last_q_avg_ > q_thresh_; }

  /// The F_n formula by itself (exposed for tests and analysis).
  [[nodiscard]] double markers_for(double q_avg) const;

 private:
  double q_thresh_;
  double k_cubic_;
  double mu_pps_;
  double beta_pps_;

  double integral_ = 0.0;             // sum of len * dt over the open epoch
  std::size_t current_len_ = 0;
  sim::SimTime segment_start_ = sim::SimTime::zero();
  sim::SimTime epoch_start_ = sim::SimTime::zero();
  double last_q_avg_ = 0.0;
};

/// DECbit-flavoured detector (Jain & Ramakrishnan [7]): the congestion
/// measure is the average queue length over the previous busy+idle
/// cycle plus the current busy period, rather than over a fixed epoch.
/// A "cycle" ends when the queue returns to empty.  F_n uses the same
/// M/M/1 rate-excess mapping so the rest of Corelite is untouched.
class BusyIdleCycleDetector final : public CongestionDetector {
 public:
  BusyIdleCycleDetector(double q_thresh_pkts, double k_cubic, double mu_pps, double beta_pps);

  void on_queue_length(std::size_t data_packets, sim::SimTime now) override;
  [[nodiscard]] double end_epoch(sim::SimTime now) override;
  [[nodiscard]] double last_q_avg() const override { return last_avg_; }

 private:
  void accumulate(sim::SimTime now);

  double q_thresh_;
  double k_cubic_;
  double mu_pps_;
  double beta_pps_;

  std::size_t current_len_ = 0;
  sim::SimTime segment_start_ = sim::SimTime::zero();
  // Previous complete busy+idle cycle.
  double prev_cycle_integral_ = 0.0;
  double prev_cycle_duration_ = 0.0;
  // Cycle in progress.
  double cur_cycle_integral_ = 0.0;
  double cur_cycle_duration_ = 0.0;
  bool busy_ = false;
  double last_avg_ = 0.0;
};

/// RED-flavoured detector: exponentially weighted moving average of the
/// queue-length samples; the EWMA average feeds the same F_n mapping.
class EwmaDetector final : public CongestionDetector {
 public:
  EwmaDetector(double q_thresh_pkts, double k_cubic, double mu_pps, double beta_pps,
               double ewma_gain);

  void on_queue_length(std::size_t data_packets, sim::SimTime now) override;
  [[nodiscard]] double end_epoch(sim::SimTime now) override;
  [[nodiscard]] double last_q_avg() const override { return avg_; }

 private:
  double q_thresh_;
  double k_cubic_;
  double mu_pps_;
  double beta_pps_;
  double gain_;
  double avg_ = 0.0;
};

/// Build the detector selected by cfg.detector for a link of raw
/// capacity `mu_pps` packets/second (legacy_per_epoch_mu is applied
/// here).
[[nodiscard]] std::unique_ptr<CongestionDetector> make_congestion_detector(
    const CoreliteConfig& cfg, double mu_pps);

}  // namespace corelite::qos

#include "qos/edge_router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace corelite::qos {

CoreliteEdgeRouter::CoreliteEdgeRouter(net::Network& network, net::NodeId node,
                                       const CoreliteConfig& config, stats::FlowTracker* tracker)
    : net_{network}, node_{node}, cfg_{config}, tracker_{tracker} {
  net_.node(node_).set_local_sink([this](net::Packet&& p) { handle_local(std::move(p)); });
  // Random phase: edge routers' adaptation epochs are mutually
  // desynchronized, as independent routers' timers are in practice.
  const auto phase =
      sim::TimeDelta::seconds(net_.local_sim(node_).rng().uniform(0.0, cfg_.edge_epoch.sec()));
  epoch_timer_ = net_.local_sim(node_).every(cfg_.edge_epoch, [this] { on_epoch(); }, phase);
}

CoreliteEdgeRouter::~CoreliteEdgeRouter() { epoch_timer_.cancel(); }

void CoreliteEdgeRouter::register_flow(std::unique_ptr<FlowState> fs) {
  const net::FlowId id = fs->spec.id;
  if (tracker_ != nullptr) tracker_->declare_flow(id, fs->spec.weight);
  FlowState& ref = *fs;
  if (id >= by_id_.size()) by_id_.resize(id + 1, nullptr);
  assert(by_id_[id] == nullptr && "duplicate flow id");
  by_id_[id] = &ref;
  flows_.push_back(std::move(fs));
  schedule_window(ref, 0);
}

void CoreliteEdgeRouter::add_flow(const net::FlowSpec& spec) {
  assert(spec.ingress == node_ && "flow must enter the network at this edge router");
  assert(spec.valid());
  auto fs = std::make_unique<FlowState>(spec, cfg_.adapt);
  fs->marker_spacing =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(cfg_.k1 * spec.weight)));
  register_flow(std::move(fs));
}

void CoreliteEdgeRouter::add_transit_flow(const net::FlowSpec& spec) {
  assert(spec.ingress == node_ && "flow must enter the network at this edge router");
  assert(spec.valid());
  auto fs = std::make_unique<FlowState>(spec, cfg_.adapt);
  fs->transit = true;
  fs->bucket = TokenBucket{std::max(cfg_.adapt.initial_rate_pps, 1.0),
                           std::max(1.0, cfg_.edge_burst_tokens), net_.local_sim(node_).now()};
  fs->marker_spacing =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(cfg_.k1 * spec.weight)));
  if (!transit_hook_installed_) {
    transit_hook_installed_ = true;
    net_.node(node_).set_transit_hook(
        [this](net::Packet& p) { return intercept_transit(p); });
  }
  register_flow(std::move(fs));
}

bool CoreliteEdgeRouter::intercept_transit(net::Packet& p) {
  FlowState* fsp = lookup(p.flow);
  if (fsp == nullptr || !fsp->transit) return false;
  if (p.kind == net::PacketKind::Marker) {
    // Cloud boundary: markers are edge-to-edge signals of the UPSTREAM
    // cloud; absorb them here.  This edge injects its own markers for
    // the flow's journey through THIS cloud.
    return true;
  }
  if (p.kind != net::PacketKind::Data) return false;
  FlowState& fs = *fsp;
  if (!fs.active || fs.shaping_queue.size() >= cfg_.edge_queue_capacity) {
    // Edge policing drop: the ONLY place Corelite loses packets.
    ++transit_drops_;
    if (tracker_ != nullptr) tracker_->on_dropped(p.flow);
    return true;  // consumed (dropped)
  }
  fs.shaping_queue.push_back(std::move(p));
  if (!fs.draining) {
    fs.draining = true;
    drain_transit(fs);
  }
  return true;
}

void CoreliteEdgeRouter::drain_transit(FlowState& fs) {
  if (!fs.active || fs.shaping_queue.empty()) {
    fs.draining = false;
    return;
  }
  const sim::SimTime now = net_.local_sim(node_).now();
  const double rate = std::max(fs.ctrl->rate_pps(), 1e-3);
  fs.bucket.set_rate(rate, now);

  // Drain back-to-back while the bucket holds tokens (burst tolerance);
  // the long-run rate stays b_g.
  while (!fs.shaping_queue.empty() && fs.bucket.try_consume(1.0, now)) {
    net::Packet p = std::move(fs.shaping_queue.front());
    fs.shaping_queue.pop_front();
    if (tracker_ != nullptr) tracker_->on_sent(fs.spec.id);
    // Forward directly via the FIB: re-injecting at the node would loop
    // straight back into the transit hook.
    net::Link* out = net_.node(node_).next_hop(p.dst);
    if (out != nullptr) out->send(std::move(p));
    count_marker_credit_and_maybe_mark(fs);
  }

  if (fs.shaping_queue.empty()) {
    fs.draining = false;
    return;
  }
  net_.local_sim(node_).after_detached(
      fs.bucket.time_until(1.0, now),
      [this, &fs, gen = fs.emit_gen] {
        if (gen == fs.emit_gen) drain_transit(fs);
      });
}

// Lazy lifecycle cursor: only the next transition of each flow sits in
// the event queue (a 100k-flow churn population would otherwise park
// two events per window up front).  Each window still costs exactly one
// start and one finite-stop event, matching the eager schedule.
void CoreliteEdgeRouter::schedule_window(FlowState& fs, std::size_t window) {
  auto& sim = net_.local_sim(node_);
  if (warp_ != nullptr) {
    // Fluid fast-forward: transitions are pinned to absolute
    // *experiment* time in the warp registry, whose heap top also caps
    // how far a fast-forward jump may reach.
    while (window < fs.spec.active.size() && fs.spec.active[window].stop <= sim.exp_now()) {
      ++window;
    }
    if (window >= fs.spec.active.size()) return;
    const sim::SimTime start = std::max(fs.spec.active[window].start, sim.exp_now());
    warp_->at_exp(start, [this, &fs, window] {
      start_flow(fs);
      const sim::SimTime stop = fs.spec.active[window].stop;
      if (stop < sim::SimTime::infinite()) {
        warp_->at_exp(stop, [this, &fs, window] {
          stop_flow(fs);
          schedule_window(fs, window + 1);
        });
      }
    });
    return;
  }
  while (window < fs.spec.active.size() && fs.spec.active[window].stop <= sim.now()) {
    ++window;  // window already wholly in the past
  }
  if (window >= fs.spec.active.size()) return;
  const sim::SimTime start = std::max(fs.spec.active[window].start, sim.now());
  sim.at_detached(start, [this, &fs, window] {
    start_flow(fs);
    const sim::SimTime stop = fs.spec.active[window].stop;
    if (stop < sim::SimTime::infinite()) {
      net_.local_sim(node_).at_detached(stop, [this, &fs, window] {
        stop_flow(fs);
        schedule_window(fs, window + 1);
      });
    }
  });
}

void CoreliteEdgeRouter::start_flow(FlowState& fs) {
  if (fs.active) return;
  fs.active = true;
  fs.active_slot = active_.size();
  active_.push_back(&fs);
  fs.marker_credit = 0.0;
  fs.feedback_per_core.clear();
  fs.ctrl->reset(net_.local_sim(node_).now());
  fs.pacing_anchor = net_.local_sim(node_).now();
  if (tracker_ != nullptr) {
    // Rate samples live on the experiment-time axis (identical to the
    // engine clock whenever fluid fast-forward is off).
    tracker_->record_rate(fs.spec.id, net_.local_sim(node_).exp_now(), fs.ctrl->rate_pps());
  }
  if (fs.transit) {
    // Fresh admission: no banked burst credit from the idle period.
    fs.bucket.clear(net_.local_sim(node_).now());
    if (!fs.shaping_queue.empty() && !fs.draining) {
      fs.draining = true;
      drain_transit(fs);
    }
  } else {
    emit_packet(fs);
  }
}

void CoreliteEdgeRouter::stop_flow(FlowState& fs) {
  if (!fs.active) return;
  fs.active = false;
  FlowState* last = active_.back();
  active_[fs.active_slot] = last;
  last->active_slot = fs.active_slot;
  active_.pop_back();
  fs.active_slot = kNoSlot;
  ++fs.emit_gen;  // orphan any in-flight emission/drain event
  fs.draining = false;
  fs.shaping_queue.clear();
  fs.feedback_per_core.clear();
  if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, net_.local_sim(node_).exp_now(), 0.0);
}

void CoreliteEdgeRouter::emit_packet(FlowState& fs) {
  if (!fs.active) return;

  net::Packet p;
  p.uid = net_.next_packet_uid(node_);
  p.kind = net::PacketKind::Data;
  p.flow = fs.spec.id;
  p.src = node_;
  p.dst = fs.spec.egress;
  p.size = cfg_.packet_size;
  p.created = net_.local_sim(node_).now();
  if (tracker_ != nullptr) tracker_->on_sent(fs.spec.id);
  net_.inject(node_, std::move(p));

  // An unresponsive flood bypasses the control protocol: no markers (a
  // non-compliant source doesn't speak it) and a fixed emission rate
  // the feedback loop never touches.
  if (fs.spec.flood_pps <= 0.0) count_marker_credit_and_maybe_mark(fs);

  const double rate = fs.spec.flood_pps > 0.0 ? fs.spec.flood_pps
                                              : std::max(fs.ctrl->rate_pps(), 1e-3);
  net_.local_sim(node_).after_detached(next_emission_gap(fs, rate),
                                  [this, &fs, gen = fs.emit_gen] {
                                    if (gen == fs.emit_gen) emit_packet(fs);
                                  });
}

void CoreliteEdgeRouter::count_marker_credit_and_maybe_mark(FlowState& fs) {
  // Markers reflect the out-of-profile rate: a flow at or below its
  // minimum-rate contract injects none (pure in-profile traffic is
  // never throttled, so advertising it to the cores would only skew
  // their running average and shield genuinely over-share flows).
  const double rate_now = fs.ctrl->rate_pps();
  if (rate_now <= 0.0) return;
  fs.marker_credit += fs.out_of_profile_pps() / rate_now;
  if (fs.marker_credit >= static_cast<double>(fs.marker_spacing)) {
    fs.marker_credit -= static_cast<double>(fs.marker_spacing);
    inject_marker(fs);
  }
}

sim::TimeDelta CoreliteEdgeRouter::next_emission_gap(FlowState& fs, double rate_pps) {
  const double mean_gap = 1.0 / rate_pps;
  switch (cfg_.pacing) {
    case PacingMode::Poisson:
      return sim::TimeDelta::seconds(net_.local_sim(node_).rng().exponential(mean_gap));
    case PacingMode::OnOff: {
      // Bursts at peak rate so the cycle average stays at rate_pps.
      const double burst = cfg_.on_off_burst.sec();
      const double idle = cfg_.on_off_idle.sec();
      const double cycle = burst + idle;
      const double peak_gap = mean_gap * burst / cycle;
      const double now = net_.local_sim(node_).now().sec();
      const double next = now + peak_gap;
      const double anchor = fs.pacing_anchor.sec();
      const double pos = std::fmod(next - anchor, cycle);
      if (pos <= burst) return sim::TimeDelta::seconds(next - now);
      // The next slot falls into the idle window: defer to the start of
      // the following burst.
      const double cycles_done = std::floor((next - anchor) / cycle);
      const double burst_start = anchor + (cycles_done + 1.0) * cycle;
      return sim::TimeDelta::seconds(burst_start - now);
    }
    case PacingMode::Paced:
      break;
  }
  return sim::TimeDelta::seconds(mean_gap);
}

void CoreliteEdgeRouter::inject_marker(FlowState& fs) {
  net::Packet m;
  m.uid = net_.next_packet_uid(node_);
  m.kind = net::PacketKind::Marker;
  m.flow = fs.spec.id;
  m.src = node_;
  m.dst = fs.spec.egress;  // markers follow the flow's path
  m.size = sim::DataSize::zero();
  m.marker = net::MarkerInfo{node_, fs.spec.id, fs.out_of_profile_pps() / fs.spec.weight};
  m.created = net_.local_sim(node_).now();
  ++markers_injected_;
  // Forward via the FIB directly: injecting at the node would run the
  // transit hook, which absorbs markers of transit flows (they are
  // upstream-cloud signals) — including the ones this edge just made.
  net::Link* out = net_.node(node_).next_hop(m.dst);
  if (out != nullptr) {
    out->send(std::move(m));
  } else {
    net_.inject(node_, std::move(m));
  }
}

void CoreliteEdgeRouter::on_epoch() {
  const sim::SimTime now = net_.local_sim(node_).now();
  const sim::SimTime exp_now = net_.local_sim(node_).exp_now();
  for (FlowState* fsp : active_) {
    FlowState& fs = *fsp;
    if (fs.spec.flood_pps > 0.0) {
      // Unresponsive source: feedback is discarded, the rate series
      // records the flood rate it actually emits at.
      fs.feedback_per_core.clear();
      if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, exp_now, fs.spec.flood_pps);
      continue;
    }
    // React to the bottleneck: max over core routers, not the sum
    // (paper §2.2 step 3).
    int m = 0;
    for (const auto& [core, count] : fs.feedback_per_core) m = std::max(m, count);
    fs.feedback_per_core.clear();
    fs.ctrl->on_epoch(m, now);
    if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, exp_now, fs.ctrl->rate_pps());
  }
}

void CoreliteEdgeRouter::handle_local(net::Packet&& p) {
  switch (p.kind) {
    case net::PacketKind::Feedback: {
      ++feedback_received_;
      FlowState* fs = lookup(p.marker.flow);
      if (fs != nullptr && fs->active) {
        auto it = std::find_if(fs->feedback_per_core.begin(), fs->feedback_per_core.end(),
                               [&](const auto& e) { return e.first == p.feedback_origin; });
        if (it == fs->feedback_per_core.end()) {
          fs->feedback_per_core.emplace_back(p.feedback_origin, 1);
        } else {
          ++it->second;
        }
      }
      if (tracker_ != nullptr) tracker_->on_feedback(p.marker.flow);
      break;
    }
    case net::PacketKind::Data:
      // This node is the egress for some flow: count the delivery.
      ++data_delivered_;
      if (tracker_ != nullptr) tracker_->on_delivered(p.flow);
      break;
    case net::PacketKind::Marker:
      break;  // markers reaching the egress edge are simply absorbed
    case net::PacketKind::LossNotice:
      break;  // not used by Corelite (no losses by design)
    case net::PacketKind::Ack:
      break;  // transport ACKs are host-to-host; nothing to do here
  }
}

double CoreliteEdgeRouter::current_rate_pps(net::FlowId flow) const {
  const FlowState* fs = lookup(flow);
  if (fs == nullptr || !fs->active) return 0.0;
  return fs->ctrl->rate_pps();
}

}  // namespace corelite::qos

#include "qos/ecn.h"

namespace corelite::qos {

EcnCoreRouter::EcnCoreRouter(net::Network& network, net::NodeId node,
                             const CoreliteConfig& config)
    : net_{network}, node_{node} {
  for (net::Link* link : net_.node(node_).out_links()) {
    policies_.push_back(std::make_unique<EcnMarkPolicy>(*link, config.q_thresh_pkts,
                                                        config.detector_ewma_gain));
    link->set_admission(policies_.back().get());
    links_.push_back(link);
  }
}

EcnCoreRouter::~EcnCoreRouter() {
  for (net::Link* link : links_) link->set_admission(nullptr);
}

std::uint64_t EcnCoreRouter::total_marked() const {
  std::uint64_t n = 0;
  for (const auto& p : policies_) n += p->marked();
  return n;
}

void EcnEgressAgent::on_data(const net::Packet& p) {
  if (!p.ecn) return;
  net::Packet fb;
  fb.uid = net_.next_packet_uid(node_);
  fb.kind = net::PacketKind::Feedback;
  fb.flow = p.flow;
  fb.src = node_;
  fb.dst = p.src;  // the ingress edge
  fb.size = sim::DataSize::zero();
  fb.marker = net::MarkerInfo{p.src, p.flow, 0.0};
  fb.feedback_origin = node_;
  fb.created = net_.local_sim(node_).now();
  ++echoes_;
  net_.inject(node_, std::move(fb));
}

}  // namespace corelite::qos

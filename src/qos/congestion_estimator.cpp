#include "qos/congestion_estimator.h"

#include <cassert>
#include <cmath>

namespace corelite::qos {

CongestionEstimator::CongestionEstimator(double q_thresh_pkts, double k_cubic, double mu_pps,
                                         double beta_pps)
    : q_thresh_{q_thresh_pkts}, k_cubic_{k_cubic}, mu_pps_{mu_pps}, beta_pps_{beta_pps} {
  assert(q_thresh_ >= 0.0 && k_cubic_ >= 0.0 && mu_pps_ > 0.0 && beta_pps_ > 0.0);
}

void CongestionEstimator::on_queue_length(std::size_t data_packets, sim::SimTime now) {
  integral_ += static_cast<double>(current_len_) * (now - segment_start_).sec();
  segment_start_ = now;
  current_len_ = data_packets;
}

double CongestionEstimator::markers_for(double q_avg) const {
  if (q_avg <= q_thresh_) return 0.0;
  const double rate_excess_pps =
      mu_pps_ * (q_avg / (1.0 + q_avg) - q_thresh_ / (1.0 + q_thresh_));
  const double excess = q_avg - q_thresh_;
  const double correction = k_cubic_ * excess * excess * excess;
  return rate_excess_pps / beta_pps_ + correction;
}

double CongestionEstimator::end_epoch(sim::SimTime now) {
  // Close the open length segment.
  integral_ += static_cast<double>(current_len_) * (now - segment_start_).sec();
  segment_start_ = now;

  const double span = (now - epoch_start_).sec();
  last_q_avg_ = span > 0.0 ? integral_ / span : static_cast<double>(current_len_);
  integral_ = 0.0;
  epoch_start_ = now;
  return markers_for(last_q_avg_);
}

namespace {

/// Shared M/M/1 rate-excess -> marker-count mapping (see class comment
/// on CongestionEstimator).
double fn_markers(double avg, double q_thresh, double k_cubic, double mu_pps,
                  double beta_pps) {
  if (avg <= q_thresh) return 0.0;
  const double rate_excess_pps = mu_pps * (avg / (1.0 + avg) - q_thresh / (1.0 + q_thresh));
  const double excess = avg - q_thresh;
  return rate_excess_pps / beta_pps + k_cubic * excess * excess * excess;
}

}  // namespace

// ---------------------------------------------------------------------------
// BusyIdleCycleDetector

BusyIdleCycleDetector::BusyIdleCycleDetector(double q_thresh_pkts, double k_cubic,
                                             double mu_pps, double beta_pps)
    : q_thresh_{q_thresh_pkts}, k_cubic_{k_cubic}, mu_pps_{mu_pps}, beta_pps_{beta_pps} {}

void BusyIdleCycleDetector::accumulate(sim::SimTime now) {
  const double dt = (now - segment_start_).sec();
  segment_start_ = now;
  cur_cycle_integral_ += static_cast<double>(current_len_) * dt;
  cur_cycle_duration_ += dt;
}

void BusyIdleCycleDetector::on_queue_length(std::size_t data_packets, sim::SimTime now) {
  accumulate(now);
  const bool was_busy = busy_;
  busy_ = data_packets > 0;
  if (was_busy && !busy_) {
    // Busy period just ended: the idle period that follows still belongs
    // to this cycle; the cycle closes when the queue becomes busy again.
  } else if (!was_busy && busy_ && cur_cycle_duration_ > 0.0) {
    // Idle -> busy: the previous busy+idle cycle is complete.
    prev_cycle_integral_ = cur_cycle_integral_;
    prev_cycle_duration_ = cur_cycle_duration_;
    cur_cycle_integral_ = 0.0;
    cur_cycle_duration_ = 0.0;
  }
  current_len_ = data_packets;
}

double BusyIdleCycleDetector::end_epoch(sim::SimTime now) {
  accumulate(now);
  const double integral = prev_cycle_integral_ + cur_cycle_integral_;
  const double duration = prev_cycle_duration_ + cur_cycle_duration_;
  last_avg_ = duration > 0.0 ? integral / duration : static_cast<double>(current_len_);
  return fn_markers(last_avg_, q_thresh_, k_cubic_, mu_pps_, beta_pps_);
}

// ---------------------------------------------------------------------------
// EwmaDetector

EwmaDetector::EwmaDetector(double q_thresh_pkts, double k_cubic, double mu_pps,
                           double beta_pps, double ewma_gain)
    : q_thresh_{q_thresh_pkts},
      k_cubic_{k_cubic},
      mu_pps_{mu_pps},
      beta_pps_{beta_pps},
      gain_{ewma_gain} {}

void EwmaDetector::on_queue_length(std::size_t data_packets, sim::SimTime /*now*/) {
  avg_ = (1.0 - gain_) * avg_ + gain_ * static_cast<double>(data_packets);
}

double EwmaDetector::end_epoch(sim::SimTime /*now*/) {
  return fn_markers(avg_, q_thresh_, k_cubic_, mu_pps_, beta_pps_);
}

std::unique_ptr<CongestionDetector> make_congestion_detector(const CoreliteConfig& cfg,
                                                             double mu_pps) {
  const double mu = mu_pps * (cfg.legacy_per_epoch_mu ? cfg.core_epoch.sec() : 1.0);
  switch (cfg.detector) {
    case DetectorKind::BusyIdleCycle:
      return std::make_unique<BusyIdleCycleDetector>(cfg.q_thresh_pkts, cfg.k_cubic, mu,
                                                     cfg.adapt.beta_pps);
    case DetectorKind::Ewma:
      return std::make_unique<EwmaDetector>(cfg.q_thresh_pkts, cfg.k_cubic, mu,
                                            cfg.adapt.beta_pps, cfg.detector_ewma_gain);
    case DetectorKind::EpochAverage:
      break;
  }
  return std::make_unique<CongestionEstimator>(cfg.q_thresh_pkts, cfg.k_cubic, mu,
                                               cfg.adapt.beta_pps);
}

}  // namespace corelite::qos

// Binary congestion marking (DECbit / ECN style) — the negative
// control for Corelite's weighted marker feedback.
//
// The paper's related work (§5) discusses DECbit [7]: routers set a
// congestion-indication bit in passing packets when the average queue
// exceeds a threshold.  This module implements that scheme on top of
// the same substrate so the two feedback designs are directly
// comparable:
//
//   EcnCoreRouter   — marks DATA packets (sets Packet::ecn) on every
//                     outgoing link whose EWMA queue length exceeds the
//                     threshold.  Stateless per flow, like Corelite.
//   EcnEgressAgent  — at the egress, echoes one zero-size Feedback
//                     packet to the flow's ingress edge per marked data
//                     packet (the receiver's "congestion experienced"
//                     echo).  The ingress is a regular
//                     CoreliteEdgeRouter counting feedback per epoch.
//
// The predictable failure: marked packets arrive in proportion to the
// flow's PACKET rate b_g, not its normalized rate b_g/w, so the LIMD
// decrease is multiplicative in b_g and the system converges to EQUAL
// rates — rate weights are ignored.  Corelite's contribution is exactly
// the normalization this scheme lacks (bench/ablation_ecn).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/network.h"
#include "qos/config.h"

namespace corelite::qos {

/// Marks data packets when the link's EWMA queue exceeds the threshold.
class EcnMarkPolicy final : public net::AdmissionPolicy {
 public:
  EcnMarkPolicy(const net::Link& link, double q_thresh_pkts, double ewma_gain)
      : link_{link}, q_thresh_{q_thresh_pkts}, gain_{ewma_gain} {}

  bool admit(net::Packet& p, sim::SimTime /*now*/) override {
    avg_ = (1.0 - gain_) * avg_ + gain_ * static_cast<double>(link_.queued_data_packets());
    if (avg_ > q_thresh_) {
      p.ecn = true;
      ++marked_;
    }
    return true;  // marking never drops
  }

  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] std::uint64_t marked() const { return marked_; }

 private:
  const net::Link& link_;
  double q_thresh_;
  double gain_;
  double avg_ = 0.0;
  std::uint64_t marked_ = 0;
};

/// Installs an EcnMarkPolicy on every outgoing link of a core node.
class EcnCoreRouter {
 public:
  EcnCoreRouter(net::Network& network, net::NodeId node, const CoreliteConfig& config);
  EcnCoreRouter(const EcnCoreRouter&) = delete;
  EcnCoreRouter& operator=(const EcnCoreRouter&) = delete;
  ~EcnCoreRouter();

  [[nodiscard]] std::uint64_t total_marked() const;

 private:
  net::Network& net_;
  net::NodeId node_;
  std::vector<net::Link*> links_;
  std::vector<std::unique_ptr<EcnMarkPolicy>> policies_;
};

/// Echo agent for an egress node: one Feedback per marked data packet,
/// addressed to the packet's ingress edge (Packet::src).  Call from the
/// egress node's local sink.
class EcnEgressAgent {
 public:
  explicit EcnEgressAgent(net::Network& network, net::NodeId node)
      : net_{network}, node_{node} {}

  /// Process a delivered data packet; echoes if it carries the mark.
  void on_data(const net::Packet& p);

  [[nodiscard]] std::uint64_t echoes_sent() const { return echoes_; }

 private:
  net::Network& net_;
  net::NodeId node_;
  std::uint64_t echoes_ = 0;
};

}  // namespace corelite::qos

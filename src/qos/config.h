// Tunables for the Corelite mechanisms.
//
// Defaults reproduce the paper's simulation setup (§4): 1 KB packets,
// K1 = 1, alpha = 1, 40-packet queues, congestion threshold 8 packets,
// 100 ms epochs.
#pragma once

#include <cstddef>

#include "sim/units.h"

namespace corelite::qos {

/// Which weighted-fair marker selection mechanism core routers run.
enum class SelectorKind {
  /// §3.2: truly flow-stateless selection via running averages r_av / w_av
  /// and a deficit counter.  The paper's preferred mechanism (default).
  Stateless,
  /// §2.2: circular marker cache sampled uniformly upon congestion.
  MarkerCache,
};

/// Which congestion-estimation module core routers run (§3.1 notes the
/// module is replaceable; see congestion_estimator.h).
enum class DetectorKind {
  EpochAverage,   ///< paper default: time-weighted q_avg per epoch
  BusyIdleCycle,  ///< DECbit-style cycle averaging (Jain & Ramakrishnan)
  Ewma,           ///< RED-style exponentially weighted moving average
};

/// Closed-loop adaptation policy (see rate_controller.h).
enum class AdaptKind {
  Limd,  ///< the paper's scheme: +alpha / -beta*m (default)
  Aimd,  ///< classic AIMD: +alpha / *= (1-md_factor)^m
  Mimd,  ///< negative control: *= mi_factor / *= (1-md_factor)^m
};

/// How the edge paces a flow's packets onto the wire at rate b_g.
/// The paper's experiments use constant-bit-rate shaping; the other
/// modes exercise the §3.1 claim that the F_n computation "works
/// reasonably well even if the Poisson traffic assumptions do not hold"
/// (see bench/ablation_traffic).
enum class PacingMode {
  Paced,    ///< constant inter-packet gap 1/b_g (paper default)
  Poisson,  ///< exponential gaps with mean 1/b_g
  OnOff,    ///< periodic bursts at peak rate, idle between (bursty)
};

/// Source rate adaptation (paper §2.2 step 3 and §4 agent description).
struct RateAdaptConfig {
  AdaptKind kind = AdaptKind::Limd;
  /// Additive increase per epoch when no feedback arrived (pkt/s).
  double alpha_pps = 1.0;
  /// Rate decrement per received marker (pkt/s).  The core's F_n formula
  /// counts markers assuming each throttles the aggregate by beta.
  double beta_pps = 1.0;
  /// Rate a flow starts (and restarts) at, in slow start (pkt/s).
  double initial_rate_pps = 1.0;
  /// Floor below which adaptation never throttles a flow (pkt/s).
  double min_rate_pps = 0.5;
  /// Slow-start exit threshold (pkt/s): crossing it halves the rate and
  /// switches to linear increase (paper §4: 32 pkt/s).
  double ss_thresh_pps = 32.0;
  /// Slow start doubles the rate once per this interval (paper: 1 s).
  sim::TimeDelta ss_double_interval = sim::TimeDelta::seconds(1);

  /// AIMD/MIMD: per-marker multiplicative decrease factor.
  double md_factor = 0.03;
  /// MIMD: per-epoch multiplicative increase factor when unmarked.
  double mi_factor = 1.02;
};

struct CoreliteConfig {
  /// Edge adaptation epoch (feedback accumulation window).
  sim::TimeDelta edge_epoch = sim::TimeDelta::millis(100);
  /// Core congestion-detection epoch.
  sim::TimeDelta core_epoch = sim::TimeDelta::millis(100);

  /// Marker spacing constant: a marker is injected after every
  /// N_w = K1 * w data packets of a flow.
  double k1 = 1.0;

  /// Congestion threshold on the average data-queue length (packets).
  double q_thresh_pkts = 8.0;
  /// Self-correcting cubic gain `k` in the F_n formula (§3.1).  Zero
  /// disables the correction term (ablation: risks queue blow-up).
  double k_cubic = 0.01;
  /// Evaluate the F_n formula with mu "in packets per congestion epoch"
  /// — the paper's literal wording — instead of packets per second (the
  /// dimensionally consistent reading; see congestion_estimator.h).
  /// Under the literal reading the M/M/1 term is an order of magnitude
  /// too weak, which is exactly the regime where the cubic term is
  /// load-bearing; bench/ablation_kcubic exercises both.
  bool legacy_per_epoch_mu = false;

  /// Congestion-estimation module (paper default: per-epoch averaging).
  DetectorKind detector = DetectorKind::EpochAverage;
  /// Per-sample EWMA gain for DetectorKind::Ewma.
  double detector_ewma_gain = 0.05;

  SelectorKind selector = SelectorKind::Stateless;
  /// Capacity of the circular marker cache (MarkerCache selector only).
  std::size_t marker_cache_size = 256;

  /// Per-epoch EWMA gain for the running average r_av of marker labels
  /// (§3.2).  r_av averages the *epoch means* of labels so its window is
  /// independent of marker load; 0.1 gives roughly a 1 s window at
  /// 100 ms epochs.  See bench/ablation_rav for the sensitivity sweep.
  double rav_gain = 0.1;
  /// EWMA gain for the running average w_av of markers per epoch (§3.2).
  double wav_gain = 0.25;
  /// Markers labelled >= eligibility_factor * r_av may be echoed.  The
  /// paper's strict reading is 1.0, but at a converged equilibrium every
  /// flow sits exactly at the average — a strict threshold then filters
  /// out ~half the feedback precisely when congestion needs it, and the
  /// queue escapes to tail drops.  A 10% band keeps at-average flows
  /// throttleable while still protecting genuinely below-share flows.
  double eligibility_factor = 0.9;

  /// Fixed data packet size (paper: 1 KB).
  sim::DataSize packet_size = sim::DataSize::kilobytes(1);

  /// Packet pacing discipline at the edge shaper.
  PacingMode pacing = PacingMode::Paced;
  /// OnOff pacing: burst / idle period lengths.  The peak rate during a
  /// burst is scaled so the average rate stays b_g.
  sim::TimeDelta on_off_burst = sim::TimeDelta::millis(200);
  sim::TimeDelta on_off_idle = sim::TimeDelta::millis(200);

  /// Transit shaping burst tolerance (token-bucket depth, packets):
  /// queued bursts up to this size drain back-to-back at line rate
  /// while the long-run rate stays b_g.  1 = strict per-packet pacing.
  double edge_burst_tokens = 8.0;

  /// Per-flow shaping queue capacity (packets) for transit flows —
  /// externally generated traffic (e.g. TCP hosts) that the edge shapes
  /// to b_g.  Overflow drops happen HERE, at the edge, never in the
  /// core ("drop packets from ill behaved flows at the edges of the
  /// network", paper §6).
  std::size_t edge_queue_capacity = 32;

  RateAdaptConfig adapt{};
};

}  // namespace corelite::qos

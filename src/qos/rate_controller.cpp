#include "qos/rate_controller.h"

#include <algorithm>
#include <cassert>

#include "sim/fastmath.h"

namespace corelite::qos {

SlowStartBase::SlowStartBase(const RateAdaptConfig& cfg, double min_rate_contract_pps)
    : cfg_{cfg},
      floor_{std::max(cfg.min_rate_pps, min_rate_contract_pps)},
      rate_{std::max(cfg.initial_rate_pps, floor_)} {
  assert(cfg_.alpha_pps > 0.0 && cfg_.beta_pps > 0.0);
}

void SlowStartBase::reset(sim::SimTime now) {
  rate_ = std::max(cfg_.initial_rate_pps, floor_);
  slow_start_ = true;
  last_double_ = now;
}

void SlowStartBase::on_epoch(int feedback_count, sim::SimTime now) {
  assert(feedback_count >= 0);
  if (slow_start_) {
    if (feedback_count > 0) {
      // First congestion notification ends slow start (paper §4).
      rate_ = std::max(floor_, rate_ / 2.0);
      slow_start_ = false;
      return;
    }
    if (now - last_double_ >= cfg_.ss_double_interval) {
      rate_ *= 2.0;
      last_double_ = now;
      if (rate_ > cfg_.ss_thresh_pps) {
        // Strictly exceeded ss-thresh: halve and go closed-loop
        // (paper §4).  Doubling from below (1,2,...,32) exits at
        // 64 -> 32, matching "complete their slow-start phase at 7 s".
        rate_ = std::max(floor_, rate_ / 2.0);
        slow_start_ = false;
      }
    }
    return;
  }
  adapt(rate_, feedback_count, floor_);
}

void LimdRateController::adapt(double& rate, int feedback_count, double floor) {
  if (feedback_count == 0) {
    rate += cfg_.alpha_pps;  // probe for spare bandwidth
  } else {
    rate = std::max(floor, rate - cfg_.beta_pps * static_cast<double>(feedback_count));
  }
}

void AimdRateController::adapt(double& rate, int feedback_count, double floor) {
  if (feedback_count == 0) {
    rate += cfg_.alpha_pps;
  } else {
    // Small integer exponents recur every epoch; the decay cache makes
    // the multiplicative decrease a table hit (bit-identical results).
    rate = std::max(floor, rate * sim::fastmath::cached_pow(1.0 - cfg_.md_factor,
                                                            feedback_count));
  }
}

void MimdRateController::adapt(double& rate, int feedback_count, double floor) {
  if (feedback_count == 0) {
    rate *= cfg_.mi_factor;
  } else {
    rate = std::max(floor, rate * sim::fastmath::cached_pow(1.0 - cfg_.md_factor,
                                                            feedback_count));
  }
}

std::unique_ptr<RateController> make_rate_controller(const RateAdaptConfig& cfg,
                                                     double min_rate_contract_pps) {
  switch (cfg.kind) {
    case AdaptKind::Aimd:
      return std::make_unique<AimdRateController>(cfg, min_rate_contract_pps);
    case AdaptKind::Mimd:
      return std::make_unique<MimdRateController>(cfg, min_rate_contract_pps);
    case AdaptKind::Limd:
      break;
  }
  return std::make_unique<LimdRateController>(cfg, min_rate_contract_pps);
}

}  // namespace corelite::qos

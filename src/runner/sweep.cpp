#include "runner/sweep.h"

#include <bit>
#include <chrono>
#include <mutex>
#include <utility>

#include "runner/thread_pool.h"
#include "sim/hotpath.h"
#include "stats/fairness.h"

namespace corelite::runner {

std::string cell_key(const RunDescriptor& d) {
  std::string key = d.scenario + "/" + scenario::mechanism_name(d.mechanism);
  if (d.num_flows > 0) key += "/n" + std::to_string(d.num_flows);
  return key;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t repeat) {
  // splitmix64: statistically independent streams even for adjacent
  // (base, repeat) pairs, unlike base + repeat.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (repeat + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<RunDescriptor> expand_grid(const SweepGrid& grid) {
  std::vector<RunDescriptor> runs;
  runs.reserve(grid.scenarios.size() * grid.mechanisms.size() * grid.repeats);
  for (const std::string& scen : grid.scenarios) {
    for (const scenario::Mechanism mech : grid.mechanisms) {
      for (std::size_t rep = 0; rep < grid.repeats; ++rep) {
        RunDescriptor d;
        d.scenario = scen;
        d.mechanism = mech;
        d.repeat = rep;
        d.seed = derive_seed(grid.base_seed, rep);
        d.duration_sec = grid.duration_sec;
        d.num_flows = grid.num_flows;
        d.weights = grid.weights;
        d.control_loss_rate = grid.control_loss_rate;
        runs.push_back(std::move(d));
      }
    }
  }
  return runs;
}

std::optional<scenario::ScenarioSpec> build_spec(const RunDescriptor& d) {
  auto spec = scenario::scenario_by_name(d.scenario, d.mechanism);
  if (!spec.has_value()) return std::nullopt;
  if (d.num_flows > 0 && d.num_flows != spec->num_flows) {
    spec->num_flows = d.num_flows;
    spec->weights.assign(d.num_flows, 1.0);
    // The scenario's activity windows and contracts are per-flow lists
    // sized for its default population; an overridden population runs
    // always-on.
    spec->activity.clear();
    spec->min_rates.clear();
  }
  if (!d.weights.empty()) {
    if (d.weights.size() != spec->num_flows) return std::nullopt;
    spec->weights = d.weights;
  }
  if (d.duration_sec > 0.0) spec->duration = sim::SimTime::seconds(d.duration_sec);
  if (d.control_loss_rate > 0.0) spec->control_loss_rate = d.control_loss_rate;
  spec->seed = d.seed;
  return spec;
}

namespace {

// FNV-1a, fed 64 bits at a time; doubles enter by bit pattern so the
// digest witnesses exact equality, not approximate.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

std::uint64_t digest_of(const scenario::ScenarioResult& r) {
  Digest d;
  d.mix(r.events_processed);
  d.mix(r.total_data_drops);
  d.mix(r.congested_link_drops);
  d.mix(r.feedback_messages);
  d.mix(r.markers_injected);
  d.mix(static_cast<std::uint64_t>(r.core_flow_state));
  for (const auto& [id, fs] : r.tracker.all()) {
    d.mix(static_cast<std::uint64_t>(id));
    d.mix(fs.sent);
    d.mix(fs.delivered);
    d.mix(fs.dropped);
    d.mix(fs.feedback_received);
    for (const auto& p : fs.allotted_rate.points()) {
      d.mix(p.t);
      d.mix(p.v);
    }
    for (const auto& p : fs.cumulative_delivered.points()) {
      d.mix(p.t);
      d.mix(p.v);
    }
  }
  return d.h;
}

}  // namespace

RunResult execute_run(const RunDescriptor& desc) {
  RunResult res;
  res.desc = desc;
  const auto spec = build_spec(desc);
  if (!spec.has_value()) return res;

  const auto t0 = std::chrono::steady_clock::now();
  const scenario::ScenarioResult r = scenario::run_paper_scenario(*spec);
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  // Publish this worker's hot-path op counts so --profile output is
  // complete regardless of which pool thread ran which universe.
  sim::flush_hotpath_counters();

  const double t_end = spec->duration.sec();
  const double w0 = t_end / 2.0;
  const auto ideal = scenario::ideal_rates_at(*spec, sim::SimTime::seconds(w0));
  std::vector<double> rates;
  std::vector<double> weights;
  res.avg_rate_pps.resize(spec->num_flows, 0.0);
  for (std::size_t i = 0; i < spec->num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i + 1);
    const double avg = r.tracker.series(f).allotted_rate.average_over(w0, t_end);
    res.avg_rate_pps[i] = avg;
    if (ideal.count(f) != 0 && ideal.at(f) > 0.0) {
      rates.push_back(avg);
      weights.push_back(spec->weights[i]);
    }
  }
  res.jain = stats::jain_index(rates, weights);
  res.events = r.events_processed;
  res.total_drops = r.total_data_drops;
  res.delivered = r.tracker.total_delivered();
  res.feedback = r.feedback_messages;
  res.core_flow_state = r.core_flow_state;
  res.digest = digest_of(r);
  res.ok = true;
  return res;
}

void record_metrics(stats::SweepAggregator& agg, const RunResult& r) {
  const std::string cell = cell_key(r.desc);
  const auto idx = static_cast<std::uint64_t>(r.index);
  agg.add(cell, idx, "jain", r.jain);
  agg.add(cell, idx, "events", static_cast<double>(r.events));
  agg.add(cell, idx, "total_drops", static_cast<double>(r.total_drops));
  agg.add(cell, idx, "delivered", static_cast<double>(r.delivered));
  agg.add(cell, idx, "feedback", static_cast<double>(r.feedback));
  agg.add(cell, idx, "core_flow_state", static_cast<double>(r.core_flow_state));
}

std::vector<RunResult> SweepRunner::run(const std::vector<RunDescriptor>& runs) {
  std::vector<RunResult> results(runs.size());
  if (runs.empty()) return results;

  std::mutex done_mu;
  std::size_t done = 0;
  {
    ThreadPool pool{std::min(std::max<std::size_t>(1, jobs_), runs.size())};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.submit([this, &runs, &results, &done_mu, &done, i, total = runs.size()] {
        RunResult r = execute_run(runs[i]);
        r.index = i;
        const std::lock_guard<std::mutex> lock{done_mu};
        ++done;
        results[i] = std::move(r);
        if (progress_) progress_(results[i], done, total);
      });
    }
    pool.wait_idle();
  }
  return results;
}

}  // namespace corelite::runner

#include "runner/sweep.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "runner/thread_pool.h"
#include "sim/hotpath.h"
#include "stats/fairness.h"

namespace corelite::runner {

std::string cell_key(const RunDescriptor& d) {
  std::string key = d.scenario + "/" + scenario::mechanism_name(d.mechanism);
  if (d.num_flows > 0) key += "/n" + std::to_string(d.num_flows);
  // The LP count changes the digest (per-LP RNG streams), so LP cells
  // aggregate separately; lp_threads does not and is omitted.
  if (d.lp > 1) key += "/lp" + std::to_string(d.lp);
  // Fluid runs trade bit-identity for wall clock; keep their digests in
  // a separate cell from packet-mode runs of the same scenario.
  if (d.fluid) key += "/fluid";
  if (d.fluid_observe) key += "/observe";
  return key;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t repeat) {
  // splitmix64: statistically independent streams even for adjacent
  // (base, repeat) pairs, unlike base + repeat.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (repeat + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<RunDescriptor> expand_grid(const SweepGrid& grid) {
  std::vector<RunDescriptor> runs;
  runs.reserve(grid.scenarios.size() * grid.mechanisms.size() * grid.repeats);
  for (const std::string& scen : grid.scenarios) {
    for (const scenario::Mechanism mech : grid.mechanisms) {
      for (std::size_t rep = 0; rep < grid.repeats; ++rep) {
        RunDescriptor d;
        d.scenario = scen;
        d.mechanism = mech;
        d.repeat = rep;
        d.seed = derive_seed(grid.base_seed, rep);
        d.duration_sec = grid.duration_sec;
        d.num_flows = grid.num_flows;
        d.weights = grid.weights;
        d.control_loss_rate = grid.control_loss_rate;
        d.lp = grid.lp;
        d.lp_threads = grid.lp_threads;
        d.fluid = grid.fluid;
        runs.push_back(std::move(d));
      }
    }
  }
  return runs;
}

std::optional<scenario::ScenarioSpec> build_spec(const RunDescriptor& d) {
  auto spec = scenario::scenario_by_name(d.scenario, d.mechanism);
  if (!spec.has_value()) return std::nullopt;
  if (d.num_flows > 0 && d.num_flows != spec->num_flows) {
    spec->num_flows = d.num_flows;
    if (spec->generated.has_value()) {
      // Generated scenarios regenerate their population at run time;
      // the override just resizes it (and drops per-flow series at
      // bench scale, matching the named-scenario default).
      spec->generated->flows.num_flows = d.num_flows;
      spec->generated->flows.record_series = d.num_flows <= 20000;
    } else {
      spec->weights.assign(d.num_flows, 1.0);
      // The scenario's activity windows and contracts are per-flow lists
      // sized for its default population; an overridden population runs
      // always-on.
      spec->activity.clear();
      spec->min_rates.clear();
    }
  }
  if (!d.weights.empty()) {
    if (spec->generated.has_value()) {
      // For generated populations an explicit weight list becomes the
      // repeating weight cycle (any length).
      spec->generated->flows.weight_cycle = d.weights;
    } else {
      if (d.weights.size() != spec->num_flows) return std::nullopt;
      spec->weights = d.weights;
    }
  }
  if (d.duration_sec > 0.0) spec->duration = sim::SimTime::seconds(d.duration_sec);
  if (d.control_loss_rate > 0.0) spec->control_loss_rate = d.control_loss_rate;
  if (d.lp > 0) spec->lp = d.lp;
  if (d.lp_threads > 0) spec->lp_threads = d.lp_threads;
  spec->fluid.enabled = d.fluid || d.fluid_observe;
  spec->fluid.observe_only = d.fluid_observe && !d.fluid;
  spec->seed = d.seed;
  return spec;
}

namespace {

// FNV-1a, fed 64 bits at a time; doubles enter by bit pattern so the
// digest witnesses exact equality, not approximate.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t result_digest(const scenario::ScenarioResult& r) {
  Digest d;
  d.mix(r.events_processed);
  d.mix(r.total_data_drops);
  d.mix(r.congested_link_drops);
  d.mix(r.feedback_messages);
  d.mix(r.markers_injected);
  d.mix(static_cast<std::uint64_t>(r.core_flow_state));
  for (const auto& [id, fs] : r.tracker.all()) {
    d.mix(static_cast<std::uint64_t>(id));
    d.mix(fs.sent);
    d.mix(fs.delivered);
    d.mix(fs.dropped);
    d.mix(fs.feedback_received);
    for (const auto& p : fs.allotted_rate.points()) {
      d.mix(p.t);
      d.mix(p.v);
    }
    for (const auto& p : fs.cumulative_delivered.points()) {
      d.mix(p.t);
      d.mix(p.v);
    }
  }
  return d.h;
}

std::uint64_t combined_digest(const std::vector<RunResult>& results) {
  Digest d;
  for (const auto& r : results) d.mix(r.digest);
  return d.h;
}

RunResult execute_run(const RunDescriptor& desc,
                      const scenario::ScenarioSpec::InstrumentFn& instrument,
                      const SpecHook& spec_hook) {
  RunResult res;
  res.desc = desc;
  auto spec = build_spec(desc);
  if (!spec.has_value()) return res;
  if (instrument) spec->instrument = instrument;
  if (spec_hook) spec_hook(*spec);

  const auto t0 = std::chrono::steady_clock::now();
  scenario::ScenarioResult r = scenario::run_paper_scenario(*spec);
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  // Publish this worker's hot-path op counts so --profile output is
  // complete regardless of which pool thread ran which universe.
  sim::flush_hotpath_counters();

  const double t_end = spec->duration.sec();
  const double w0 = t_end / 2.0;
  const auto ideal = scenario::ideal_rates_at(*spec, sim::SimTime::seconds(w0));
  std::vector<double> rates;
  std::vector<double> weights;
  res.avg_rate_pps.resize(spec->num_flows, 0.0);
  for (std::size_t i = 0; i < spec->num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i + 1);
    const auto& fs = r.tracker.series(f);
    // Counters-only runs (100k-flow populations) have no rate series;
    // delivered throughput stands in for the steady-state average.
    const double avg = !fs.allotted_rate.points().empty()
                           ? fs.allotted_rate.average_over(w0, t_end)
                           : static_cast<double>(fs.delivered) / t_end;
    res.avg_rate_pps[i] = avg;
    if (ideal.count(f) != 0 && ideal.at(f) > 0.0) {
      rates.push_back(avg);
      weights.push_back(spec->weights[i]);
    } else if (spec->generated.has_value()) {
      // No closed-form water-filling oracle on generated graphs: score
      // fairness over weight-normalized achieved rates instead.
      rates.push_back(avg);
      weights.push_back(fs.weight);
    }
  }
  res.jain = stats::jain_index(rates, weights);
  res.events = r.events_processed;
  res.total_drops = r.total_data_drops;
  res.delivered = r.tracker.total_delivered();
  res.feedback = r.feedback_messages;
  res.core_flow_state = r.core_flow_state;
  res.fluid_ff_sec = r.fluid_stats.fast_forwarded_sec;
  res.fluid_steady_sec = r.fluid_stats.steady_detected_sec;
  res.fluid_jumps = r.fluid_stats.jumps;
  res.fluid_events_elided = r.fluid_stats.events_elided_est;
  res.cert_attempts = r.fluid_stats.cert_attempts;
  res.cert_rejects_min_skip = r.fluid_stats.cert_reject_min_skip;
  res.cert_rejects_drift = r.fluid_stats.cert_reject_drift;
  res.cert_rejects_agreement = r.fluid_stats.cert_reject_agreement;
  res.cert_mean_dwell_at_accept =
      r.fluid_stats.jumps > 0
          ? r.fluid_stats.cert_dwell_at_accept_sum / static_cast<double>(r.fluid_stats.jumps)
          : 0.0;
  res.audit = std::move(r.audit_report);
  res.digest = result_digest(r);
  res.ok = true;
  return res;
}

void record_metrics(stats::SweepAggregator& agg, const RunResult& r) {
  const std::string cell = cell_key(r.desc);
  const auto idx = static_cast<std::uint64_t>(r.index);
  agg.add(cell, idx, "jain", r.jain);
  agg.add(cell, idx, "events", static_cast<double>(r.events));
  agg.add(cell, idx, "total_drops", static_cast<double>(r.total_drops));
  agg.add(cell, idx, "delivered", static_cast<double>(r.delivered));
  agg.add(cell, idx, "feedback", static_cast<double>(r.feedback));
  agg.add(cell, idx, "core_flow_state", static_cast<double>(r.core_flow_state));
  if (r.desc.fluid) {
    agg.add(cell, idx, "fluid_ff_sec", r.fluid_ff_sec);
    agg.add(cell, idx, "fluid_jumps", static_cast<double>(r.fluid_jumps));
  }
}

double estimate_eta_sec(const EtaSnapshot& snap) {
  const std::size_t done = snap.done_fluid + snap.done_packet;
  if (done == 0) return -1.0;
  const double pooled =
      (snap.wall_ms_fluid + snap.wall_ms_packet) / static_cast<double>(done);
  const double avg_fluid =
      snap.done_fluid > 0 ? snap.wall_ms_fluid / static_cast<double>(snap.done_fluid) : pooled;
  const double avg_packet =
      snap.done_packet > 0 ? snap.wall_ms_packet / static_cast<double>(snap.done_packet) : pooled;
  double remaining_ms = avg_fluid * static_cast<double>(snap.pending_fluid) +
                        avg_packet * static_cast<double>(snap.pending_packet);
  // Busy runs get credit for the wall they have already burned; a run
  // past its kind's average contributes zero, not a negative.
  for (const EtaSnapshot::Busy& b : snap.busy) {
    remaining_ms += std::max(0.0, (b.fluid ? avg_fluid : avg_packet) - b.elapsed_ms);
  }
  return remaining_ms / (1000.0 * static_cast<double>(std::max<std::size_t>(1, snap.workers)));
}

namespace {

/// Shared sweep-progress board: workers post what they are doing,
/// the heartbeat thread renders it.  Pure observation — it never feeds
/// back into scheduling or results, so digests stay --jobs-invariant.
struct ProgressBoard {
  struct Worker {
    bool busy = false;
    bool fluid = false;  ///< the running descriptor's kind (see EtaSnapshot)
    std::string label;
    std::chrono::steady_clock::time_point start{};
  };
  std::mutex mu;
  std::vector<Worker> workers;
  std::size_t done = 0;
  double done_wall_ms_sum = 0.0;
  // Per-kind accounting for the ETA model: fluid fast-forward runs are
  // far cheaper than packet runs, so their wall times never pool.
  std::size_t done_fluid = 0;
  std::size_t done_packet = 0;
  double wall_ms_fluid = 0.0;
  double wall_ms_packet = 0.0;
  std::size_t started_fluid = 0;
  std::size_t started_packet = 0;
  std::size_t total_fluid = 0;
  std::size_t total_packet = 0;
};

void print_heartbeat(std::ostream& os, ProgressBoard& board, std::size_t total,
                     std::chrono::steady_clock::time_point now) {
  const std::lock_guard<std::mutex> lock{board.mu};
  const double avg_ms = board.done > 0 ? board.done_wall_ms_sum / static_cast<double>(board.done)
                                       : 0.0;
  std::size_t busy = 0;
  for (const auto& w : board.workers) busy += w.busy ? 1 : 0;
  os << "[sweep] " << board.done << "/" << total << " done";
  if (board.done > 0 && board.done < total) {
    EtaSnapshot snap;
    snap.workers = board.workers.size();
    snap.done_fluid = board.done_fluid;
    snap.done_packet = board.done_packet;
    snap.wall_ms_fluid = board.wall_ms_fluid;
    snap.wall_ms_packet = board.wall_ms_packet;
    snap.pending_fluid = board.total_fluid - board.started_fluid;
    snap.pending_packet = board.total_packet - board.started_packet;
    for (const auto& w : board.workers) {
      if (!w.busy) continue;
      snap.busy.push_back(
          {w.fluid, std::chrono::duration<double, std::milli>(now - w.start).count()});
    }
    const double eta_s = estimate_eta_sec(snap);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", eta_s);
    os << ", avg " << static_cast<std::uint64_t>(avg_ms) << " ms/run";
    if (eta_s >= 0.0) os << ", eta ~" << buf << " s";
  }
  if (busy > 0) {
    os << " |";
    for (std::size_t i = 0; i < board.workers.size(); ++i) {
      const auto& w = board.workers[i];
      if (!w.busy) continue;
      const double el_ms = std::chrono::duration<double, std::milli>(now - w.start).count();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", el_ms / 1000.0);
      os << " w" << i << ": " << w.label << " (" << buf << " s";
      // A run that has been busy for >3x the mean completed-run time is
      // the sweep's likely critical path — flag it for the operator.
      if (avg_ms > 0.0 && el_ms > 3.0 * avg_ms) os << ", straggler";
      os << ")";
    }
  }
  os << "\n" << std::flush;
}

}  // namespace

std::vector<RunResult> SweepRunner::run(const std::vector<RunDescriptor>& runs) {
  std::vector<RunResult> results(runs.size());
  if (runs.empty()) return results;

  const auto epoch = std::chrono::steady_clock::now();
  const std::size_t pool_size = std::min(std::max<std::size_t>(1, jobs_), runs.size());

  ProgressBoard board;
  board.workers.resize(pool_size);
  for (const RunDescriptor& d : runs) {
    (d.fluid ? board.total_fluid : board.total_packet) += 1;
  }

  std::mutex done_mu;
  std::size_t done = 0;
  {
    ThreadPool pool{pool_size};

    // Heartbeat thread: wakes every interval, renders the board, exits
    // promptly when poked at teardown.
    std::thread heartbeat;
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    if (heartbeat_os_ != nullptr && heartbeat_interval_sec_ > 0.0) {
      heartbeat = std::thread([this, &board, &hb_mu, &hb_cv, &hb_stop, total = runs.size()] {
        const auto interval = std::chrono::duration<double>(heartbeat_interval_sec_);
        std::unique_lock<std::mutex> lock{hb_mu};
        while (!hb_cv.wait_for(lock, interval, [&hb_stop] { return hb_stop; })) {
          print_heartbeat(*heartbeat_os_, board, total, std::chrono::steady_clock::now());
        }
      });
    }

    for (std::size_t i = 0; i < runs.size(); ++i) {
      pool.submit([this, &runs, &results, &done_mu, &done, &board, epoch, i,
                   total = runs.size()] {
        const std::size_t worker = ThreadPool::current_worker_index();
        const auto start = std::chrono::steady_clock::now();
        if (worker < board.workers.size()) {
          const std::lock_guard<std::mutex> lock{board.mu};
          auto& w = board.workers[worker];
          w.busy = true;
          w.fluid = runs[i].fluid;
          w.label = cell_key(runs[i]) + " r" + std::to_string(runs[i].repeat);
          w.start = start;
          (runs[i].fluid ? board.started_fluid : board.started_packet) += 1;
        }

        RunResult r =
            execute_run(runs[i], instrument_ && i == instrument_index_ ? instrument_ : nullptr,
                        spec_hook_ && i == spec_hook_index_ ? spec_hook_ : nullptr);
        r.index = i;
        r.worker = worker == ThreadPool::kNotAWorker ? 0 : worker;
        r.wall_start_ms = std::chrono::duration<double, std::milli>(start - epoch).count();

        if (worker < board.workers.size()) {
          const std::lock_guard<std::mutex> lock{board.mu};
          board.workers[worker].busy = false;
          ++board.done;
          board.done_wall_ms_sum += r.wall_ms;
          (runs[i].fluid ? board.done_fluid : board.done_packet) += 1;
          (runs[i].fluid ? board.wall_ms_fluid : board.wall_ms_packet) += r.wall_ms;
        }
        const std::lock_guard<std::mutex> lock{done_mu};
        ++done;
        results[i] = std::move(r);
        if (progress_) progress_(results[i], done, total);
      });
    }
    pool.wait_idle();

    if (heartbeat.joinable()) {
      {
        const std::lock_guard<std::mutex> lock{hb_mu};
        hb_stop = true;
      }
      hb_cv.notify_all();
      heartbeat.join();
      // One final line so short sweeps always show a terminal state.
      print_heartbeat(*heartbeat_os_, board, runs.size(), std::chrono::steady_clock::now());
    }
  }
  return results;
}

}  // namespace corelite::runner

#include "runner/thread_pool.h"

#include <algorithm>
#include <utility>

#include "sim/parallel/thread_budget.h"

namespace corelite::runner {

namespace {
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  // Register the pool's footprint with the process-wide thread budget so
  // per-run LP engines in auto mode (lp_threads = 0) don't oversubscribe
  // --jobs x --lp beyond the hardware.  The worker count itself is never
  // reduced here — --jobs is an explicit user choice.
  budget_reservation_ = n > 1 ? n - 1 : 0;
  if (budget_reservation_ > 0) sim::par::ThreadBudget::instance().reserve(budget_reservation_);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
  if (budget_reservation_ > 0) sim::par::ThreadBudget::instance().release(budget_reservation_);
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace corelite::runner

// Multi-threaded scenario-sweep harness.
//
// The paper's evaluation — and every bench row — is a *sweep*: many
// independent runs over seeds, weights, mechanisms and topologies.
// Each run is a self-contained single-threaded universe (Simulator +
// Network + PacketPool built from scratch inside the worker), so runs
// parallelize with no shared mutable state: a RunDescriptor is plain
// data, a worker turns it into a ScenarioSpec via the scenario
// factories and executes it, and results come back in descriptor
// order.
//
// Determinism contract: a run's outcome is a pure function of its
// descriptor.  Seeds derive from (base_seed, repeat) via splitmix64 —
// never from execution order — so `--jobs N` output is bit-identical
// to serial execution (every RunResult, digests included; only wall_ms
// varies).  Repeat k of every cell shares one seed, which pairs runs
// across mechanisms for variance-reduced comparisons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "stats/aggregate.h"

namespace corelite::runner {

/// Plain description of one run — cheap to copy across threads.  The
/// override fields refine the named paper scenario; zero/empty means
/// "keep the scenario's default".
struct RunDescriptor {
  std::string scenario = "fig5";
  scenario::Mechanism mechanism = scenario::Mechanism::Corelite;
  std::uint64_t seed = 1;
  std::size_t repeat = 0;  ///< repeat index within its cell

  double duration_sec = 0.0;
  std::size_t num_flows = 0;  ///< overriding resets activity windows to always-on
  std::vector<double> weights;
  double control_loss_rate = 0.0;
  /// Parallel-engine overrides: lp > 0 sets ScenarioSpec::lp (LP count;
  /// 1 = force serial), lp_threads > 0 sets ScenarioSpec::lp_threads.
  /// 0 keeps the scenario defaults.  lp is part of the cell key (the
  /// digest depends on the effective LP count); lp_threads is not.
  std::size_t lp = 0;
  std::size_t lp_threads = 0;
  /// Hybrid fluid fast-forward (serial runs only).  Part of the cell
  /// key: fluid runs are not bit-identical to packet runs, so their
  /// digests must never aggregate into the same cell.
  bool fluid = false;
  /// Run the fluid convergence detector without ever jumping — the
  /// packet results are authoritative but fluid_steady_sec attributes
  /// how much of the run sat in fast-forwardable state.  Also part of
  /// the cell key (detector ticks change the event count).
  bool fluid_observe = false;
};

/// Aggregation key: runs differing only in seed/repeat share a cell.
[[nodiscard]] std::string cell_key(const RunDescriptor& d);

/// Deterministic per-run seed: splitmix64 over (base_seed, repeat).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t repeat);

/// A rectangular grid of runs: scenarios × mechanisms × repeats, with
/// shared overrides.  Expansion order (and thus run indices) is
/// scenario-major, then mechanism, then repeat.
struct SweepGrid {
  std::vector<std::string> scenarios{"fig5"};
  std::vector<scenario::Mechanism> mechanisms{scenario::Mechanism::Corelite};
  std::size_t repeats = 1;
  std::uint64_t base_seed = 1;

  double duration_sec = 0.0;
  std::size_t num_flows = 0;
  std::vector<double> weights;
  double control_loss_rate = 0.0;
  std::size_t lp = 0;          ///< see RunDescriptor::lp
  std::size_t lp_threads = 0;  ///< see RunDescriptor::lp_threads
  bool fluid = false;          ///< see RunDescriptor::fluid
};

[[nodiscard]] std::vector<RunDescriptor> expand_grid(const SweepGrid& grid);

/// Materialize the full spec for a descriptor.  Pure function — safe
/// from any thread.  nullopt if the scenario name is unknown or the
/// weights override does not match the flow count.
[[nodiscard]] std::optional<scenario::ScenarioSpec> build_spec(const RunDescriptor& d);

/// One run's outcome, reduced to what sweeps aggregate.
struct RunResult {
  RunDescriptor desc;
  std::size_t index = 0;  ///< position in the descriptor list
  bool ok = false;

  double jain = 0.0;                 ///< weighted Jain over [T/2, T]
  std::vector<double> avg_rate_pps;  ///< per flow, averaged over [T/2, T]
  std::uint64_t events = 0;
  std::uint64_t total_drops = 0;
  std::uint64_t delivered = 0;
  std::uint64_t feedback = 0;
  std::size_t core_flow_state = 0;
  /// Fluid fast-forward outcome (zeros for packet-mode runs).  Excluded
  /// from the digest — the digest witnesses the simulated results, not
  /// how much wall clock the engine skipped to produce them.
  double fluid_ff_sec = 0.0;       ///< experiment seconds fast-forwarded
  double fluid_steady_sec = 0.0;   ///< seconds spent in detected steady state
  std::uint64_t fluid_jumps = 0;   ///< number of fast-forward jumps taken
  std::uint64_t fluid_events_elided = 0;  ///< estimated events skipped
  /// Certification-attempt accounting (always maintained by the fluid
  /// controller; zeros for packet-mode runs).  Excluded from the digest
  /// like the other fluid fields.
  std::uint64_t cert_attempts = 0;
  std::uint64_t cert_rejects_min_skip = 0;
  std::uint64_t cert_rejects_drift = 0;
  std::uint64_t cert_rejects_agreement = 0;
  double cert_mean_dwell_at_accept = 0.0;  ///< detector ticks, mean over jumps
  double wall_ms = 0.0;  ///< worker wall-clock; excluded from the digest
  /// Wall-clock offset of this run's start from SweepRunner::run()'s
  /// epoch, and the pool worker that ran it.  Telemetry only (Chrome
  /// trace wall spans, heartbeat) — excluded from the digest, and 0 /
  /// worker 0 for runs executed outside a sweep.
  double wall_start_ms = 0.0;
  std::size_t worker = 0;

  /// Fairness-audit report, present only for runs whose spec enabled
  /// the auditor (see SweepRunner::set_run_spec_hook).  Shared so
  /// RunResult stays copyable for aggregation.
  std::shared_ptr<telemetry::FairnessAuditReport> audit;

  /// FNV-1a over every per-flow counter and rate/cumulative sample of
  /// the run — the bit-identity witness for determinism checks.
  std::uint64_t digest = 0;
};

/// The digest stored in RunResult::digest, exposed so single-run tools
/// can print/manifest the same bit-identity witness sweeps use.
[[nodiscard]] std::uint64_t result_digest(const scenario::ScenarioResult& r);

/// Order-insensitive-input, order-sensitive-output reduction: FNV-1a
/// over the per-run digests in descriptor (index) order.  This is the
/// digest a whole sweep prints and manifests; identical for any --jobs.
[[nodiscard]] std::uint64_t combined_digest(const std::vector<RunResult>& results);

/// Arbitrary spec refinement applied after build_spec and before the
/// run — the audit path uses it to flip ScenarioSpec::audit and attach
/// probes on one chosen run.  Unlike `instrument`, a hook MAY change
/// the run's event stream (the audit sampler does), so hooked runs are
/// only --jobs-invariant if the hook itself is deterministic.
using SpecHook = std::function<void(scenario::ScenarioSpec&)>;

/// Build and execute one universe on the calling thread.  `instrument`,
/// if set, is forwarded to the spec (see ScenarioSpec::instrument) —
/// passive observation only, so the digest is unaffected.
[[nodiscard]] RunResult execute_run(
    const RunDescriptor& d, const scenario::ScenarioSpec::InstrumentFn& instrument = nullptr,
    const SpecHook& spec_hook = nullptr);

/// Record a result's deterministic metrics (jain, events, drops,
/// delivered, feedback, core_flow_state) into `agg` under the run's
/// cell key.  wall_ms is deliberately not recorded (see aggregate.h).
void record_metrics(stats::SweepAggregator& agg, const RunResult& r);

/// Inputs to the heartbeat's ETA model, split by run kind.  Fluid
/// fast-forward runs finish an order of magnitude faster than packet
/// runs of the same scenario, so a pooled mean wall time skews the ETA
/// badly on mixed grids; the estimator keeps per-kind averages.
struct EtaSnapshot {
  std::size_t workers = 1;
  /// Completed-run counts and wall-time sums (ms), per kind.
  std::size_t done_fluid = 0;
  std::size_t done_packet = 0;
  double wall_ms_fluid = 0.0;
  double wall_ms_packet = 0.0;
  /// Runs not yet started, per kind.
  std::size_t pending_fluid = 0;
  std::size_t pending_packet = 0;
  /// Runs currently executing: kind + elapsed wall so far.
  struct Busy {
    bool fluid = false;
    double elapsed_ms = 0.0;
  };
  std::vector<Busy> busy;
};

/// Estimated seconds until the sweep drains.  Per-kind completed-run
/// averages (falling back to the pooled average while a kind has no
/// completions yet); busy runs are credited the wall they have already
/// spent.  Negative when nothing has completed (ETA unknown).  Pure
/// function — unit-tested without threads.
[[nodiscard]] double estimate_eta_sec(const EtaSnapshot& snap);

class SweepRunner {
 public:
  /// `jobs` worker threads (floor 1; capped at the run count).
  explicit SweepRunner(std::size_t jobs) : jobs_{jobs} {}

  /// Called after each run completes, under an internal lock, with the
  /// finished count.  Completion order is scheduling-dependent; the
  /// returned vector's order is not.
  using Progress = std::function<void(const RunResult&, std::size_t done, std::size_t total)>;
  void set_progress(Progress cb) { progress_ = std::move(cb); }

  /// Instrument exactly one run (by descriptor index) with a telemetry
  /// hook — typically run 0, to render its virtual-time packet
  /// lifecycles into a trace without paying observer cost on the rest.
  void set_run_instrument(std::size_t index, scenario::ScenarioSpec::InstrumentFn fn) {
    instrument_index_ = index;
    instrument_ = std::move(fn);
  }

  /// Refine exactly one run's spec (by descriptor index) before it
  /// executes — how the audit path enables the fairness auditor on run
  /// 0 only, keeping the rest of the grid digest-clean.  See SpecHook.
  void set_run_spec_hook(std::size_t index, SpecHook fn) {
    spec_hook_index_ = index;
    spec_hook_ = std::move(fn);
  }

  /// Live progress heartbeat: every `interval_sec`, print one line to
  /// `os` with completed/total runs, per-worker current run + elapsed,
  /// and an ETA from the mean completed-run time.  Runs busy for more
  /// than 3x that mean are flagged as stragglers.  nullptr or a
  /// non-positive interval disables (the default).
  void set_heartbeat(std::ostream* os, double interval_sec) {
    heartbeat_os_ = os;
    heartbeat_interval_sec_ = interval_sec;
  }

  /// Execute every descriptor, `jobs` at a time.  results[i] always
  /// corresponds to runs[i].
  [[nodiscard]] std::vector<RunResult> run(const std::vector<RunDescriptor>& runs);

 private:
  std::size_t jobs_;
  Progress progress_;
  std::size_t instrument_index_ = static_cast<std::size_t>(-1);
  scenario::ScenarioSpec::InstrumentFn instrument_;
  std::size_t spec_hook_index_ = static_cast<std::size_t>(-1);
  SpecHook spec_hook_;
  std::ostream* heartbeat_os_ = nullptr;
  double heartbeat_interval_sec_ = 0.0;
};

}  // namespace corelite::runner

// A fixed-size worker pool for CPU-bound jobs.
//
// The sweep harness runs many independent simulation universes; each is
// single-threaded and allocation-heavy, so the right parallel shape is
// N long-lived workers pulling whole runs off a queue — not per-run
// thread spawn (costly) and not a work-stealing scheduler (pointless
// for jobs measured in seconds).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace corelite::runner {

class ThreadPool {
 public:
  /// current_worker_index() outside any pool worker.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Index [0, thread_count) of the pool worker running the calling
  /// thread, or kNotAWorker.  Telemetry uses it to label wall-clock
  /// spans and heartbeat rows per worker.
  [[nodiscard]] static std::size_t current_worker_index();

  /// Starts `threads` workers (floor 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for queued jobs to finish, then joins the workers.
  ~ThreadPool();

  /// Enqueue a job.  Jobs must not throw (the simulation API is
  /// noexcept in practice); an escaping exception terminates.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  /// Tokens held in the process-wide sim::par::ThreadBudget while the
  /// pool lives (workers beyond the first), so auto-mode LP runtimes
  /// see the cores the sweep already occupies.
  std::size_t budget_reservation_ = 0;
};

}  // namespace corelite::runner

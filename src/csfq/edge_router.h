// Weighted CSFQ edge behaviour + the paper's loss-driven source agents.
//
// The edge router estimates each flow's rate with exponential averaging
// (constant K) and stamps every data packet's label with the normalized
// rate r/w — the only information CSFQ cores use.  The co-located
// source agent shapes the flow at its allowed rate b_g and adapts b_g
// with the same LIMD/slow-start controller Corelite uses, with packet
// losses (LossNotice control packets from core routers) standing in for
// marker feedback, exactly as the paper's comparison sets up (§4).
//
// Note the structural difference the paper highlights: CSFQ losses do
// not identify which core link dropped, so the agent reacts to the
// TOTAL loss count per epoch, while Corelite's edge can take the max
// over core routers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "csfq/config.h"
#include "csfq/rate_estimator.h"
#include "net/flow.h"
#include "net/network.h"
#include "net/packet.h"
#include "qos/rate_controller.h"
#include "sim/fluid/warp.h"
#include "stats/flow_tracker.h"

namespace corelite::csfq {

class CsfqEdgeRouter {
 public:
  CsfqEdgeRouter(net::Network& network, net::NodeId node, const CsfqConfig& config,
                 stats::FlowTracker* tracker = nullptr);

  CsfqEdgeRouter(const CsfqEdgeRouter&) = delete;
  CsfqEdgeRouter& operator=(const CsfqEdgeRouter&) = delete;
  ~CsfqEdgeRouter();

  void add_flow(const net::FlowSpec& spec);

  [[nodiscard]] double current_rate_pps(net::FlowId flow) const;
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t loss_notices_received() const { return losses_received_; }

  /// Fluid fast-forward: route activity-window transitions through the
  /// experiment-time warp registry (see CoreliteEdgeRouter::
  /// set_fluid_warp).  Must be set before any add_flow; nullptr keeps
  /// the legacy engine-time scheduling bit for bit.
  void set_fluid_warp(sim::fluid::TimeWarp* warp) { warp_ = warp; }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct FlowState {
    net::FlowSpec spec;
    std::unique_ptr<qos::RateController> ctrl;
    ExponentialRateEstimator estimator;
    bool active = false;
    int losses_this_epoch = 0;
    /// Emission events are fire-and-forget; stopping the flow bumps the
    /// generation so the old chain's in-flight event becomes a no-op.
    std::uint32_t emit_gen = 0;
    /// Position in active_ while active (kNoSlot otherwise) — O(1)
    /// swap-removal when the flow stops.
    std::size_t active_slot = kNoSlot;

    FlowState(const net::FlowSpec& s, const CsfqConfig& cfg)
        : spec{s},
          ctrl{qos::make_rate_controller(cfg.adapt, s.min_rate_pps)},
          estimator{cfg.k_flow} {}
  };

  /// Dense id-indexed lookup; nullptr for unknown flows.
  [[nodiscard]] FlowState* lookup(net::FlowId id) const {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }

  void schedule_window(FlowState& fs, std::size_t window);
  void start_flow(FlowState& fs);
  void stop_flow(FlowState& fs);
  void emit_packet(FlowState& fs);
  void on_epoch();
  void handle_local(net::Packet&& p);

  net::Network& net_;
  net::NodeId node_;
  CsfqConfig cfg_;
  stats::FlowTracker* tracker_;
  sim::fluid::TimeWarp* warp_ = nullptr;
  /// Owner (insertion order, address-stable via unique_ptr: emission
  /// events capture FlowState&), dense id index, and the set of
  /// currently active flows — per-epoch bookkeeping is O(active), and
  /// per-packet lookups are an array index instead of a hash probe.
  std::vector<std::unique_ptr<FlowState>> flows_;
  std::vector<FlowState*> by_id_;
  std::vector<FlowState*> active_;
  sim::PeriodicHandle epoch_timer_;
  std::uint64_t losses_received_ = 0;
};

}  // namespace corelite::csfq

#include "csfq/core.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"

namespace corelite::csfq {

namespace {

const telemetry::Counter& relabel_counter() {
  static const telemetry::Counter c{"csfq.relabels"};
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// CsfqLinkPolicy

CsfqLinkPolicy::CsfqLinkPolicy(const CsfqConfig& cfg, double capacity_pps, sim::Rng& rng)
    : cfg_{cfg},
      capacity_pps_{capacity_pps},
      rng_{&rng},
      arrival_{cfg.k_link},
      accepted_{cfg.k_link} {}

void CsfqLinkPolicy::update_alpha(double label, bool dropped, sim::SimTime now) {
  const double a = arrival_.rate();
  if (a >= capacity_pps_) {
    // Congested regime.
    if (!congested_) {
      congested_ = true;
      window_start_ = now;
      if (alpha_ <= 0.0) {
        // First congestion ever: seed alpha from the largest label seen
        // so far (the CSFQ paper's initialization).
        alpha_ = tmp_alpha_ > 0.0 ? tmp_alpha_ : label;
      }
    } else if (now - window_start_ >= cfg_.k_alpha) {
      const double f = accepted_.rate();
      if (f > 0.0) {
        alpha_ *= capacity_pps_ / f;
      }
      window_start_ = now;
    }
  } else {
    // Uncongested: alpha tracks the largest label in the window, so an
    // under-loaded link never drops (alpha >= every label).
    if (congested_) {
      congested_ = false;
      window_start_ = now;
      tmp_alpha_ = 0.0;
    } else if (now - window_start_ >= cfg_.k_alpha) {
      if (tmp_alpha_ > 0.0) alpha_ = tmp_alpha_;
      window_start_ = now;
      tmp_alpha_ = 0.0;
    }
    tmp_alpha_ = std::max(tmp_alpha_, label);
  }
  (void)dropped;
}

bool CsfqLinkPolicy::admit(net::Packet& p, sim::SimTime now) {
  arrival_.on_arrival(1.0, now);

  const double label = p.label;
  double drop_prob = 0.0;
  if (congested_ && alpha_ > 0.0 && label > 0.0) {
    drop_prob = std::max(0.0, 1.0 - alpha_ / label);
  }
  const bool drop = rng_->bernoulli(drop_prob);

  if (!drop) {
    accepted_.on_arrival(1.0, now);
    // Relabel: downstream links must see the flow's *accepted* rate.
    if (alpha_ > 0.0) {
      if (alpha_ < label) relabel_counter().add();
      p.label = std::min(label, alpha_);
    }
  }
  update_alpha(label, drop, now);

  if (drop) {
    ++drops_;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CsfqCoreRouter

struct CsfqCoreRouter::LinkState final : net::LinkObserver {
  CsfqCoreRouter* owner = nullptr;
  net::Link* link = nullptr;
  CsfqLinkPolicy policy;

  LinkState(CsfqCoreRouter* o, net::Link* l, const CsfqConfig& cfg, sim::Rng& rng)
      : owner{o}, link{l}, policy{cfg, l->rate().pps(cfg.packet_size), rng} {}

  void on_drop(const net::Packet& p, sim::SimTime /*now*/) override {
    if (p.is_data()) owner->send_loss_notice(p);
  }

  void on_link_destroyed(net::Link& /*l*/) override { link = nullptr; }
};

CsfqCoreRouter::CsfqCoreRouter(net::Network& network, net::NodeId node, const CsfqConfig& config)
    : net_{network}, node_{node}, cfg_{config} {
  for (net::Link* link : net_.node(node_).out_links()) {
    links_.push_back(std::make_unique<LinkState>(this, link, cfg_, net_.local_sim(node_).rng()));
    link->set_admission(&links_.back()->policy);
    link->add_observer(links_.back().get(), net::Link::kObserveDrop);
  }
}

CsfqCoreRouter::~CsfqCoreRouter() {
  // Unhook both registrations: the links may outlive this router (the
  // network owns them), so a leftover observer pointer would dangle.
  for (auto& ls : links_) {
    if (ls->link == nullptr) continue;
    ls->link->set_admission(nullptr);
    ls->link->remove_observer(ls.get());
  }
}

const CsfqLinkPolicy* CsfqCoreRouter::policy_for(net::NodeId link_to) const {
  for (const auto& ls : links_) {
    if (ls->link->to() == link_to) return &ls->policy;
  }
  return nullptr;
}

void CsfqCoreRouter::send_loss_notice(const net::Packet& dropped) {
  net::Packet notice;
  notice.uid = net_.next_packet_uid(node_);
  notice.kind = net::PacketKind::LossNotice;
  notice.flow = dropped.flow;
  notice.src = node_;
  notice.dst = dropped.src;  // back to the ingress edge
  notice.size = sim::DataSize::zero();
  notice.feedback_origin = node_;
  notice.created = net_.local_sim(node_).now();
  ++notices_sent_;
  net_.inject(node_, std::move(notice));
}

// ---------------------------------------------------------------------------
// LossNotifyingCoreRouter

struct LossNotifyingCoreRouter::DropWatch final : net::LinkObserver {
  LossNotifyingCoreRouter* owner = nullptr;
  net::Link* link = nullptr;
  DropWatch(LossNotifyingCoreRouter* o, net::Link* l) : owner{o}, link{l} {}
  void on_drop(const net::Packet& p, sim::SimTime /*now*/) override {
    if (p.is_data()) owner->send_loss_notice(p);
  }
  void on_link_destroyed(net::Link& /*l*/) override { link = nullptr; }
};

LossNotifyingCoreRouter::LossNotifyingCoreRouter(net::Network& network, net::NodeId node)
    : net_{network}, node_{node} {
  for (net::Link* link : net_.node(node_).out_links()) {
    watches_.push_back(std::make_unique<DropWatch>(this, link));
    link->add_observer(watches_.back().get(), net::Link::kObserveDrop);
  }
}

LossNotifyingCoreRouter::~LossNotifyingCoreRouter() {
  for (auto& w : watches_) {
    if (w->link != nullptr) w->link->remove_observer(w.get());
  }
}

void LossNotifyingCoreRouter::send_loss_notice(const net::Packet& dropped) {
  net::Packet notice;
  notice.uid = net_.next_packet_uid(node_);
  notice.kind = net::PacketKind::LossNotice;
  notice.flow = dropped.flow;
  notice.src = node_;
  notice.dst = dropped.src;
  notice.size = sim::DataSize::zero();
  notice.feedback_origin = node_;
  notice.created = net_.local_sim(node_).now();
  ++notices_sent_;
  net_.inject(node_, std::move(notice));
}

}  // namespace corelite::csfq

// Exponential rate averaging (Stoica et al., CSFQ, SIGCOMM'98 eq. 5).
//
// On each packet arrival the estimate is updated as
//   r_new = (1 - e^(-T/K)) * (l / T) + e^(-T/K) * r_old
// where T is the inter-arrival gap, l the packet's size (here 1 packet,
// so rates are in packets per second) and K the averaging constant.
// The exponential form makes the estimate insensitive to the packet
// length distribution and converges within a few K.
#pragma once

#include "sim/fastmath.h"
#include "sim/units.h"

namespace corelite::csfq {

class ExponentialRateEstimator {
 public:
  explicit ExponentialRateEstimator(sim::TimeDelta averaging_constant)
      : k_{averaging_constant.sec()} {}

  /// Record one arrival of `units` (packets or bytes — caller's choice,
  /// rate is in units/second).  Returns the updated estimate.
  double on_arrival(double units, sim::SimTime now) {
    if (!started_) {
      started_ = true;
      last_ = now;
      // First packet: seed the estimate assuming one inter-arrival of K.
      rate_ = units / k_;
      return rate_;
    }
    const double t = (now - last_).sec();
    last_ = now;
    if (t <= 0.0) {
      // Simultaneous arrival (possible with zero-delay hops): fold the
      // units in as if an infinitesimal gap — weight entirely to history
      // plus an instantaneous bump bounded by units/K.
      rate_ += units / k_;
      return rate_;
    }
    // Paced sources and constant service times mean the distinct gaps
    // T are few; the decay cache turns the per-packet libm exp into a
    // table hit with bit-identical results (see sim/fastmath.h).
    const double decay = sim::fastmath::cached_exp(-t / k_);
    rate_ = (1.0 - decay) * (units / t) + decay * rate_;
    return rate_;
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] bool started() const { return started_; }

  void reset() {
    started_ = false;
    rate_ = 0.0;
  }

 private:
  double k_;
  bool started_ = false;
  double rate_ = 0.0;
  sim::SimTime last_ = sim::SimTime::zero();
};

}  // namespace corelite::csfq

// Weighted CSFQ core behaviour (Stoica et al. SIGCOMM'98, weighted
// variant; the comparison baseline of the Corelite paper §4).
//
// Each congested-capable link runs a CsfqLinkPolicy:
//   - estimate the aggregate arrival rate A~ and accepted rate F~ with
//     exponential averaging (constant K_link),
//   - maintain the normalized fair share alpha: while congested
//     (A~ >= C), refine alpha <- alpha * C / F~ once per K_c window;
//     while uncongested, track the largest packet label seen,
//   - drop each arriving data packet with probability
//     max(0, 1 - alpha / label) and relabel survivors to
//     min(label, alpha).
//
// A CsfqCoreRouter installs the policy on every outgoing link of a node
// and converts every data drop (probabilistic or tail) into a
// LossNotice control packet routed back to the flow's ingress edge —
// the congestion signal the paper's CSFQ source agents adapt to.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "csfq/config.h"
#include "csfq/rate_estimator.h"
#include "net/link.h"
#include "net/network.h"
#include "sim/random.h"

namespace corelite::csfq {

class CsfqLinkPolicy final : public net::AdmissionPolicy {
 public:
  /// `capacity_pps`: link capacity in packets/second (labels are
  /// normalized packet rates, so everything stays in packet units).
  CsfqLinkPolicy(const CsfqConfig& cfg, double capacity_pps, sim::Rng& rng);

  [[nodiscard]] bool admit(net::Packet& p, sim::SimTime now) override;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double arrival_rate() const { return arrival_.rate(); }
  [[nodiscard]] double accepted_rate() const { return accepted_.rate(); }
  [[nodiscard]] bool congested() const { return congested_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  void update_alpha(double label, bool dropped, sim::SimTime now);

  CsfqConfig cfg_;
  double capacity_pps_;
  sim::Rng* rng_;

  ExponentialRateEstimator arrival_;
  ExponentialRateEstimator accepted_;

  double alpha_ = 0.0;      ///< normalized fair share estimate
  double tmp_alpha_ = 0.0;  ///< max label seen in the current uncongested window
  bool congested_ = false;
  sim::SimTime window_start_ = sim::SimTime::zero();
  std::uint64_t drops_ = 0;
};

class CsfqCoreRouter {
 public:
  /// Attaches a CsfqLinkPolicy + drop observer to every outgoing link of
  /// `node` existing at construction time.
  CsfqCoreRouter(net::Network& network, net::NodeId node, const CsfqConfig& config);

  CsfqCoreRouter(const CsfqCoreRouter&) = delete;
  CsfqCoreRouter& operator=(const CsfqCoreRouter&) = delete;
  ~CsfqCoreRouter();

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t loss_notices_sent() const { return notices_sent_; }
  [[nodiscard]] const CsfqLinkPolicy* policy_for(net::NodeId link_to) const;

 private:
  struct LinkState;

  void send_loss_notice(const net::Packet& dropped);

  net::Network& net_;
  net::NodeId node_;
  CsfqConfig cfg_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::uint64_t notices_sent_ = 0;
};

/// Degenerate baseline: FIFO drop-tail core that only reports losses
/// (no fair dropping at all).  Shows what the source agents achieve
/// with no in-network fairness mechanism.
class LossNotifyingCoreRouter {
 public:
  LossNotifyingCoreRouter(net::Network& network, net::NodeId node);
  LossNotifyingCoreRouter(const LossNotifyingCoreRouter&) = delete;
  LossNotifyingCoreRouter& operator=(const LossNotifyingCoreRouter&) = delete;
  ~LossNotifyingCoreRouter();

  [[nodiscard]] std::uint64_t loss_notices_sent() const { return notices_sent_; }

 private:
  struct DropWatch;
  void send_loss_notice(const net::Packet& dropped);

  net::Network& net_;
  net::NodeId node_;
  std::vector<std::unique_ptr<DropWatch>> watches_;
  std::uint64_t notices_sent_ = 0;
};

}  // namespace corelite::csfq

// Tunables for the weighted CSFQ baseline.
//
// Defaults match the Corelite paper's comparison setup (§4): both the
// per-flow rate averaging constant K and the link averaging constant
// K_link are 100 ms; source agents use the same LIMD/slow-start scheme
// as Corelite's, reacting to losses.
#pragma once

#include "qos/config.h"
#include "sim/units.h"

namespace corelite::csfq {

struct CsfqConfig {
  /// Per-flow rate estimation constant K at the edge.
  sim::TimeDelta k_flow = sim::TimeDelta::millis(100);
  /// Aggregate arrival/accept rate estimation constant K_link at the core.
  sim::TimeDelta k_link = sim::TimeDelta::millis(100);
  /// Window length for fair-share (alpha) updates.  The CSFQ paper uses
  /// K_c on the order of K_link; we follow the Corelite paper's 100 ms.
  sim::TimeDelta k_alpha = sim::TimeDelta::millis(100);

  /// Edge adaptation epoch for the loss-driven source agents.
  sim::TimeDelta edge_epoch = sim::TimeDelta::millis(100);

  /// Fixed data packet size (paper: 1 KB).
  sim::DataSize packet_size = sim::DataSize::kilobytes(1);

  /// Source agent adaptation (same scheme as Corelite's, paper §4).
  qos::RateAdaptConfig adapt{};
};

}  // namespace corelite::csfq

#include "csfq/edge_router.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace corelite::csfq {

CsfqEdgeRouter::CsfqEdgeRouter(net::Network& network, net::NodeId node, const CsfqConfig& config,
                               stats::FlowTracker* tracker)
    : net_{network}, node_{node}, cfg_{config}, tracker_{tracker} {
  net_.node(node_).set_local_sink([this](net::Packet&& p) { handle_local(std::move(p)); });
  const auto phase =
      sim::TimeDelta::seconds(net_.simulator().rng().uniform(0.0, cfg_.edge_epoch.sec()));
  epoch_timer_ = net_.simulator().every(cfg_.edge_epoch, [this] { on_epoch(); }, phase);
}

CsfqEdgeRouter::~CsfqEdgeRouter() { epoch_timer_.cancel(); }

void CsfqEdgeRouter::add_flow(const net::FlowSpec& spec) {
  assert(spec.ingress == node_);
  assert(spec.weight > 0.0);
  auto fs = std::make_unique<FlowState>(spec, cfg_);
  if (tracker_ != nullptr) tracker_->declare_flow(spec.id, spec.weight);
  FlowState& ref = *fs;
  flows_[spec.id] = std::move(fs);
  schedule_lifecycle(ref);
}

void CsfqEdgeRouter::schedule_lifecycle(FlowState& fs) {
  auto& sim = net_.simulator();
  for (const auto& iv : fs.spec.active) {
    const sim::SimTime start = std::max(iv.start, sim.now());
    sim.at_detached(start, [this, &fs] { start_flow(fs); });
    if (iv.stop < sim::SimTime::infinite()) {
      sim.at_detached(iv.stop, [this, &fs] { stop_flow(fs); });
    }
  }
}

void CsfqEdgeRouter::start_flow(FlowState& fs) {
  if (fs.active) return;
  fs.active = true;
  fs.losses_this_epoch = 0;
  fs.estimator.reset();
  fs.ctrl->reset(net_.simulator().now());
  if (tracker_ != nullptr) {
    tracker_->record_rate(fs.spec.id, net_.simulator().now(), fs.ctrl->rate_pps());
  }
  emit_packet(fs);
}

void CsfqEdgeRouter::stop_flow(FlowState& fs) {
  if (!fs.active) return;
  fs.active = false;
  ++fs.emit_gen;  // orphan any in-flight emission event
  fs.losses_this_epoch = 0;
  if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, net_.simulator().now(), 0.0);
}

void CsfqEdgeRouter::emit_packet(FlowState& fs) {
  if (!fs.active) return;

  const sim::SimTime now = net_.simulator().now();
  const double estimate = fs.estimator.on_arrival(1.0, now);

  net::Packet p;
  p.uid = net_.next_packet_uid();
  p.kind = net::PacketKind::Data;
  p.flow = fs.spec.id;
  p.src = node_;
  p.dst = fs.spec.egress;
  p.size = cfg_.packet_size;
  p.label = estimate / fs.spec.weight;  // normalized rate label
  p.created = now;
  if (tracker_ != nullptr) tracker_->on_sent(fs.spec.id);
  net_.inject(node_, std::move(p));

  const double rate = std::max(fs.ctrl->rate_pps(), 1e-3);
  net_.simulator().after_detached(sim::TimeDelta::seconds(1.0 / rate),
                                  [this, &fs, gen = fs.emit_gen] {
                                    if (gen == fs.emit_gen) emit_packet(fs);
                                  });
}

void CsfqEdgeRouter::on_epoch() {
  const sim::SimTime now = net_.simulator().now();
  for (auto& [id, fsp] : flows_) {
    FlowState& fs = *fsp;
    if (!fs.active) continue;
    const int losses = fs.losses_this_epoch;
    fs.losses_this_epoch = 0;
    fs.ctrl->on_epoch(losses, now);
    if (tracker_ != nullptr) tracker_->record_rate(id, now, fs.ctrl->rate_pps());
  }
}

void CsfqEdgeRouter::handle_local(net::Packet&& p) {
  switch (p.kind) {
    case net::PacketKind::LossNotice: {
      ++losses_received_;
      auto it = flows_.find(p.flow);
      if (it != flows_.end() && it->second->active) ++it->second->losses_this_epoch;
      if (tracker_ != nullptr) {
        tracker_->on_feedback(p.flow);
        tracker_->on_dropped(p.flow);
      }
      break;
    }
    case net::PacketKind::Data:
      if (tracker_ != nullptr) tracker_->on_delivered(p.flow);
      break;
    default:
      break;
  }
}

double CsfqEdgeRouter::current_rate_pps(net::FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end() || !it->second->active) return 0.0;
  return it->second->ctrl->rate_pps();
}

}  // namespace corelite::csfq

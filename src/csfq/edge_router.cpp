#include "csfq/edge_router.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace corelite::csfq {

CsfqEdgeRouter::CsfqEdgeRouter(net::Network& network, net::NodeId node, const CsfqConfig& config,
                               stats::FlowTracker* tracker)
    : net_{network}, node_{node}, cfg_{config}, tracker_{tracker} {
  net_.node(node_).set_local_sink([this](net::Packet&& p) { handle_local(std::move(p)); });
  const auto phase =
      sim::TimeDelta::seconds(net_.local_sim(node_).rng().uniform(0.0, cfg_.edge_epoch.sec()));
  epoch_timer_ = net_.local_sim(node_).every(cfg_.edge_epoch, [this] { on_epoch(); }, phase);
}

CsfqEdgeRouter::~CsfqEdgeRouter() { epoch_timer_.cancel(); }

void CsfqEdgeRouter::add_flow(const net::FlowSpec& spec) {
  assert(spec.ingress == node_);
  assert(spec.valid());
  auto fs = std::make_unique<FlowState>(spec, cfg_);
  if (tracker_ != nullptr) tracker_->declare_flow(spec.id, spec.weight);
  FlowState& ref = *fs;
  if (spec.id >= by_id_.size()) by_id_.resize(spec.id + 1, nullptr);
  assert(by_id_[spec.id] == nullptr && "duplicate flow id");
  by_id_[spec.id] = &ref;
  flows_.push_back(std::move(fs));
  schedule_window(ref, 0);
}

// Lazy lifecycle cursor: only the next transition of each flow sits in
// the event queue (a 100k-flow churn population would otherwise park
// two events per window up front).  Each window still costs exactly one
// start and one finite-stop event, matching the eager schedule.
void CsfqEdgeRouter::schedule_window(FlowState& fs, std::size_t window) {
  auto& sim = net_.local_sim(node_);
  if (warp_ != nullptr) {
    // Fluid fast-forward: transitions are pinned to absolute
    // *experiment* time in the warp registry, whose heap top also caps
    // how far a fast-forward jump may reach.
    while (window < fs.spec.active.size() && fs.spec.active[window].stop <= sim.exp_now()) {
      ++window;
    }
    if (window >= fs.spec.active.size()) return;
    const sim::SimTime start = std::max(fs.spec.active[window].start, sim.exp_now());
    warp_->at_exp(start, [this, &fs, window] {
      start_flow(fs);
      const sim::SimTime stop = fs.spec.active[window].stop;
      if (stop < sim::SimTime::infinite()) {
        warp_->at_exp(stop, [this, &fs, window] {
          stop_flow(fs);
          schedule_window(fs, window + 1);
        });
      }
    });
    return;
  }
  while (window < fs.spec.active.size() && fs.spec.active[window].stop <= sim.now()) {
    ++window;  // window already wholly in the past
  }
  if (window >= fs.spec.active.size()) return;
  const sim::SimTime start = std::max(fs.spec.active[window].start, sim.now());
  sim.at_detached(start, [this, &fs, window] {
    start_flow(fs);
    const sim::SimTime stop = fs.spec.active[window].stop;
    if (stop < sim::SimTime::infinite()) {
      net_.local_sim(node_).at_detached(stop, [this, &fs, window] {
        stop_flow(fs);
        schedule_window(fs, window + 1);
      });
    }
  });
}

void CsfqEdgeRouter::start_flow(FlowState& fs) {
  if (fs.active) return;
  fs.active = true;
  fs.active_slot = active_.size();
  active_.push_back(&fs);
  fs.losses_this_epoch = 0;
  fs.estimator.reset();
  fs.ctrl->reset(net_.local_sim(node_).now());
  if (tracker_ != nullptr) {
    // Rate samples live on the experiment-time axis (identical to the
    // engine clock whenever fluid fast-forward is off).
    tracker_->record_rate(fs.spec.id, net_.local_sim(node_).exp_now(), fs.ctrl->rate_pps());
  }
  emit_packet(fs);
}

void CsfqEdgeRouter::stop_flow(FlowState& fs) {
  if (!fs.active) return;
  fs.active = false;
  FlowState* last = active_.back();
  active_[fs.active_slot] = last;
  last->active_slot = fs.active_slot;
  active_.pop_back();
  fs.active_slot = kNoSlot;
  ++fs.emit_gen;  // orphan any in-flight emission event
  fs.losses_this_epoch = 0;
  if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, net_.local_sim(node_).exp_now(), 0.0);
}

void CsfqEdgeRouter::emit_packet(FlowState& fs) {
  if (!fs.active) return;

  const sim::SimTime now = net_.local_sim(node_).now();
  const double estimate = fs.estimator.on_arrival(1.0, now);

  net::Packet p;
  p.uid = net_.next_packet_uid(node_);
  p.kind = net::PacketKind::Data;
  p.flow = fs.spec.id;
  p.src = node_;
  p.dst = fs.spec.egress;
  p.size = cfg_.packet_size;
  p.label = estimate / fs.spec.weight;  // normalized rate label
  p.created = now;
  if (tracker_ != nullptr) tracker_->on_sent(fs.spec.id);
  net_.inject(node_, std::move(p));

  // An unresponsive flood paces at its fixed rate regardless of the
  // controller; the label above still carries its true estimated rate,
  // so CSFQ cores see exactly what the protocol promises them.
  const double rate = fs.spec.flood_pps > 0.0 ? fs.spec.flood_pps
                                              : std::max(fs.ctrl->rate_pps(), 1e-3);
  net_.local_sim(node_).after_detached(sim::TimeDelta::seconds(1.0 / rate),
                                  [this, &fs, gen = fs.emit_gen] {
                                    if (gen == fs.emit_gen) emit_packet(fs);
                                  });
}

void CsfqEdgeRouter::on_epoch() {
  const sim::SimTime now = net_.local_sim(node_).now();
  const sim::SimTime exp_now = net_.local_sim(node_).exp_now();
  for (FlowState* fsp : active_) {
    FlowState& fs = *fsp;
    const int losses = fs.losses_this_epoch;
    fs.losses_this_epoch = 0;
    if (fs.spec.flood_pps > 0.0) {
      // Unresponsive source: loss feedback is discarded, the rate series
      // records the flood rate it actually emits at.
      if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, exp_now, fs.spec.flood_pps);
      continue;
    }
    fs.ctrl->on_epoch(losses, now);
    if (tracker_ != nullptr) tracker_->record_rate(fs.spec.id, exp_now, fs.ctrl->rate_pps());
  }
}

void CsfqEdgeRouter::handle_local(net::Packet&& p) {
  switch (p.kind) {
    case net::PacketKind::LossNotice: {
      ++losses_received_;
      FlowState* fs = lookup(p.flow);
      if (fs != nullptr && fs->active) ++fs->losses_this_epoch;
      if (tracker_ != nullptr) {
        tracker_->on_feedback(p.flow);
        tracker_->on_dropped(p.flow);
      }
      break;
    }
    case net::PacketKind::Data:
      if (tracker_ != nullptr) tracker_->on_delivered(p.flow);
      break;
    default:
      break;
  }
}

double CsfqEdgeRouter::current_rate_pps(net::FlowId flow) const {
  const FlowState* fs = lookup(flow);
  if (fs == nullptr || !fs->active) return 0.0;
  return fs->ctrl->rate_pps();
}

}  // namespace corelite::csfq
